// Package campaign implements the paper's fault-injection methodology
// (§IV-B, §IV-D): paired golden/faulty executions under the single-bit-
// flip fault model, SDC/Benign/Crash outcome classification, campaigns of
// independent experiments, and statistically qualified studies (95%
// confidence, ±3% margin of error) run on a worker pool.
package campaign

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"vulfi/internal/benchmarks"
	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/detect"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
	"vulfi/internal/obs"
	"vulfi/internal/passes"
	"vulfi/internal/profile"
	"vulfi/internal/telemetry"
	"vulfi/internal/trace"
	"vulfi/internal/vm"
)

// Outcome classifies one fault-injection experiment (§IV-B).
type Outcome int

// Outcomes.
const (
	// OutcomeBenign: no difference between golden and faulty executions.
	OutcomeBenign Outcome = iota
	// OutcomeSDC: silent data corruption — outputs differ.
	OutcomeSDC
	// OutcomeCrash: the faulty run trapped (or hung past its budget).
	OutcomeCrash
)

var outcomeNames = map[Outcome]string{
	OutcomeBenign: "Benign", OutcomeSDC: "SDC", OutcomeCrash: "Crash",
}

// String returns the paper's outcome name.
func (o Outcome) String() string { return outcomeNames[o] }

// Config describes one study cell: a benchmark × ISA × site category.
type Config struct {
	Benchmark *benchmarks.Benchmark
	ISA       *isa.ISA
	Category  passes.Category
	Scale     benchmarks.Scale
	// Experiments per campaign (paper: 100).
	Experiments int
	// Campaigns to run (paper: 20).
	Campaigns int
	// Seed makes the whole study deterministic.
	Seed int64
	// Workers bounds experiment parallelism (0 = GOMAXPROCS).
	Workers int
	// Inputs selects the input-pool mode (§IV-B). 0 gives every
	// experiment its own freshly drawn input (the historical default);
	// K > 0 draws experiment i's input seed from a pool of K seeds
	// (index i mod K), so K = 1 is the paper-faithful fixed-input mode.
	// With a pool the golden half of each pair is memoized per input
	// seed (see goldenCache), which roughly halves campaign cost; the
	// cache is bypassed when Trace is on because divergence analysis
	// needs a live golden ring. Caching is observationally invisible:
	// results are byte-identical to an uncached run of the same pool.
	Inputs int
	// Detectors inserts the §III detectors before instrumentation.
	Detectors bool
	// DetectorEveryIteration moves the foreach check into the latch
	// (ablation; default is the paper's exit-only placement).
	DetectorEveryIteration bool
	// BroadcastDetector additionally inserts the §III-B checker.
	BroadcastDetector bool
	// MaskLoopDetector additionally inserts the mask-monotonicity
	// checker on varying-while loops (extension).
	MaskLoopDetector bool
	// WholeRegisterSites treats a vector L-value as a single fault site
	// instead of Vl lane sites (ablation of the paper's per-lane model).
	WholeRegisterSites bool
	// MaskOblivious counts masked-off lanes as live fault sites
	// (ablation of the paper's mask-aware accounting).
	MaskOblivious bool
	// Trace enables golden-vs-faulty divergence tracing: every experiment
	// records both executions into bounded ring buffers, attaches a
	// trace.Explanation to its result, and the study aggregates a
	// propagation profile (depth/spread/time-to-detection histograms on
	// the study registry plus a per-site SDC blame ranking). Tracing
	// roughly doubles per-experiment memory traffic; disabled it costs
	// one nil check per retired instruction.
	Trace bool
	// TraceCap bounds each trace ring in entries (0 = trace.DefaultCap).
	TraceCap int
	// Atlas enables per-static-site outcome attribution: the study result
	// carries one SiteTally per instrumented static site (injections,
	// outcome split, dynamic activation counts from a deterministic
	// profiling pass over the input pool). Derived purely from the
	// experiment results and golden re-runs, so resumed studies produce
	// byte-identical tallies.
	Atlas bool
	// Backend selects the execution backend for every run of this cell.
	// "" or "tree" is the reference tree-walking interpreter; "vm"
	// lowers the prepared module to the internal/vm bytecode form
	// (pre-resolved operand slots, phi-eliminating edge moves, fused
	// superinstructions) and executes that instead. The two backends are
	// observably equivalent — outcomes, dynamic counts, trap provenance,
	// injection semantics and study JSON are byte-identical (pinned by
	// the differential suite in internal/vm and backend_test.go) — so
	// the knob trades nothing but speed. Validated by Config.Validate.
	Backend string
	// Timeline enables hierarchical span tracing: the study records a
	// span tree (study → experiment → golden/faulty/compare, plus
	// compile and golden-cache-fill spans) into per-worker lanes and the
	// result carries an obs.Timeline exportable as JSONL or Chrome
	// trace-event JSON. Span IDs derive from the deterministic seed
	// schedule, so the span *tree* (IDs, parents, names, attributes) is
	// identical across runs and worker counts; lane assignment and
	// timestamps are scheduling-dependent (obs.Timeline.Canonical
	// projects the invariant subset). Disabled, the study output is
	// byte-identical to a timeline-unaware build's.
	Timeline bool
	// TraceParent, when non-empty, is a W3C trace-context traceparent
	// header ("00-<32hex>-<16hex>-01"): the study adopts its trace ID
	// and parents the study root span under the given span, so a remote
	// study's spans nest into the submitting client's trace. Validated
	// by Config.Validate; meaningful only with Timeline.
	TraceParent string

	// Profile enables the execution profiler: every interpreter run
	// feeds a per-run probe (per-opcode counts and wall-time
	// attribution, per-site hot ranking, opcode-pair mining), the study
	// aggregates them with a phase breakdown and an exp/s timeline, and
	// the result carries a HotProfile. Disabled it costs one nil check
	// per accounted instruction (the interp.Profiler pattern); enabled
	// it adds a timestamp per instruction, so profiled wall times are
	// not comparable to unprofiled ones. Counts are deterministic for a
	// configuration; wall-time fields are not. Golden-cache hits and
	// checkpoint-replayed experiments never re-execute and are therefore
	// absent from the profile.
	Profile bool

	// ShardStart/ShardEnd restrict execution to experiment indices in
	// the half-open range [ShardStart, ShardEnd) of the deterministic
	// schedule — one shard of the study. Out-of-range indices are
	// neither executed nor aggregated (campaigns entirely outside the
	// range report empty results), so a shard's StudyResult covers only
	// its range. A coordinator merges shards by replaying their
	// checkpointed triples through Completed on an unsharded
	// configuration, which reproduces the single-node aggregation
	// exactly — the per-experiment triples are the only execution state.
	// ShardEnd == 0 means no restriction. Validated (after the count
	// defaults apply) by Config.Validate.
	ShardStart int
	ShardEnd   int

	// Metrics receives this study's telemetry (phase histograms, outcome
	// counters, interpreter counters). Nil uses the process-wide default
	// registry; concurrent studies that must not interleave should each
	// pass their own registry.
	Metrics *telemetry.Registry
	// Events, when non-nil, receives structured study/campaign/experiment
	// spans as JSONL. A nil writer disables event emission.
	Events *telemetry.EventWriter
	// OnExperiment, when non-nil, is invoked after every completed
	// experiment (live progress hook). It is called from worker
	// goroutines and must be safe for concurrent use.
	OnExperiment func(*ExperimentResult)
	// OnStart, when non-nil, is invoked by the study worker pool just
	// before experiment index begins executing on the given worker
	// (liveness hook: paired with OnResult it brackets every in-flight
	// experiment, which is exactly what a stall watchdog needs).
	// Replayed Completed entries never fire it. Called from worker
	// goroutines; must be safe for concurrent use.
	OnStart func(index, worker int)
	// Heartbeat, when non-nil, receives liveness pulses from the worker
	// pool's executing interpreters on the budget-check schedule (after
	// every phi block and every 1024th retired instruction). It must be
	// cheap and non-blocking — an atomic store per call is the intended
	// shape — because it sits close to the execution hot path. Called
	// from worker goroutines.
	Heartbeat func(worker int)
	// OnResult, when non-nil, is invoked after every freshly executed
	// experiment with its index, seed and result (checkpoint hook: the
	// triple is exactly what a journal needs to replay the experiment on
	// resume). Replayed Completed entries do not fire it. Called from
	// worker goroutines; must be safe for concurrent use.
	OnResult func(index int, seed int64, r *ExperimentResult)
	// Completed carries results replayed from a checkpoint, keyed by
	// experiment index. RunStudy merges them verbatim instead of
	// re-running those indices; combined with the deterministic
	// ExperimentSeed schedule this makes an interrupted study resumable
	// with identical statistics. Replayed results bypass the telemetry
	// registry (their phases were recorded when they originally ran).
	Completed map[int]*ExperimentResult
}

func (c Config) String() string {
	return fmt.Sprintf("%s/%s/%s", c.Benchmark.Name, c.ISA.Name, c.Category)
}

// ExperimentResult is the outcome of one golden/faulty pair.
type ExperimentResult struct {
	Outcome  Outcome
	Detected bool
	// Hang marks budget-exceeded faulty runs (reported under Crash).
	Hang bool
	Trap *interp.Trap
	// Record is the performed injection (zero if the target site was
	// never reached dynamically).
	Record core.InjectionRecord
	// DynSites is N, the dynamic fault-site count of the golden run.
	DynSites uint64
	// GoldenDynInstrs is the golden run's dynamic instruction count.
	GoldenDynInstrs uint64
	InputLabel      string
	// Wall is the experiment's total wall time (golden + faulty +
	// compare); FaultyWall is the faulty run's share.
	Wall       time.Duration
	FaultyWall time.Duration
	// Explanation is the divergence analysis of this experiment (nil
	// unless the study ran with Config.Trace). It is JSON-safe and
	// round-trips through the service journal.
	Explanation *trace.Explanation
}

// Prepared is a compiled, instrumented study cell ready to run
// experiments. The module is immutable after preparation, so experiments
// can run concurrently.
type Prepared struct {
	Cfg   Config
	Res   *codegen.Result
	Inst  *core.Instrumentation
	Sites []*core.Site

	// Profile aggregates divergence explanations across the cell's
	// experiments (nil unless Cfg.Trace).
	Profile *trace.Profile

	// prof is the execution-profile collector (nil unless Cfg.Profile).
	prof *profile.Collector

	// obs is the span collector (nil unless Cfg.Timeline): one
	// unsynchronized lane per worker plus a mutex-guarded control lane,
	// merged into a Timeline at study end.
	obs *obs.Collector

	reg *telemetry.Registry
	im  *interp.Metrics
	mx  cellMetrics

	// golden memoizes golden runs per input seed (nil unless the cell
	// has an input pool and tracing is off).
	golden *goldenCache
	// vmProg is the instrumented module compiled to bytecode (nil unless
	// Cfg.Backend selects the vm backend). One immutable program is
	// shared by every instance of the cell; each instance gets its own
	// vm.Machine over it.
	vmProg *vm.Program
	// pool recycles reset interpreter instances across experiments.
	pool sync.Pool
}

// cellMetrics caches the study cell's instruments so the per-experiment
// path performs no registry lookups.
type cellMetrics struct {
	golden, faulty, compare, wall      *telemetry.Histogram
	sdc, benign, crash, hang, detected *telemetry.Counter
	experiments                        *telemetry.Counter
}

func newCellMetrics(reg *telemetry.Registry) cellMetrics {
	return cellMetrics{
		golden:      reg.Histogram("campaign.golden"),
		faulty:      reg.Histogram("campaign.faulty"),
		compare:     reg.Histogram("campaign.compare"),
		wall:        reg.Histogram("campaign.experiment"),
		sdc:         reg.Counter("campaign.outcome.sdc"),
		benign:      reg.Counter("campaign.outcome.benign"),
		crash:       reg.Counter("campaign.outcome.crash"),
		hang:        reg.Counter("campaign.outcome.hang"),
		detected:    reg.Counter("campaign.detected"),
		experiments: reg.Counter("campaign.experiments"),
	}
}

// registry resolves the study's registry (default when unconfigured).
func (c Config) registry() *telemetry.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return telemetry.Default()
}

// Prepare compiles the benchmark for the configured ISA, synthesizes
// detectors when requested, and instruments the selected site category.
// The compile+instrument wall time lands in the study registry's
// "campaign.prepare" histogram.
func Prepare(cfg Config) (*Prepared, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.registry()
	prepStart := time.Now()
	defer reg.Histogram("campaign.prepare").Since(prepStart)
	res, err := codegen.Compile(mustProgram(cfg.Benchmark), cfg.ISA,
		cfg.Benchmark.Name)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", cfg.Benchmark.Name, err)
	}
	pm := &passes.Manager{Verify: true}
	if cfg.Detectors {
		pm.Add(&detect.ForeachInvariantPass{
			EveryIteration: cfg.DetectorEveryIteration,
		})
		if cfg.BroadcastDetector {
			pm.Add(&detect.UniformBroadcastPass{})
		}
		if cfg.MaskLoopDetector {
			pm.Add(&detect.MaskMonotonicityPass{})
		}
	}
	inst := &core.Instrumentation{}
	ip := &core.InstrumentPass{Category: cfg.Category, Out: inst}
	ip.WholeRegister = cfg.WholeRegisterSites
	ip.MaskOblivious = cfg.MaskOblivious
	pm.Add(ip)
	if err := pm.Run(res.Module); err != nil {
		return nil, err
	}
	p := &Prepared{
		Cfg: cfg, Res: res, Inst: inst, Sites: inst.Sites,
		reg: reg, im: interp.NewMetrics(reg), mx: newCellMetrics(reg),
	}
	if cfg.Trace {
		p.Profile = trace.NewProfile(reg)
	} else if cfg.Inputs > 0 {
		p.golden = newGoldenCache(goldenCacheCap(cfg.Inputs), reg)
	}
	if cfg.Backend == "vm" {
		p.vmProg = vm.Compile(res.Module)
	}
	if cfg.Profile {
		p.prof = profile.NewCollector()
		p.prof.Phase("compile", time.Since(prepStart))
	}
	if cfg.Timeline {
		p.obs = newTimelineCollector(cfg, prepStart)
		p.obs.Ctl("compile", p.spanID("compile", 0), p.obs.Root(),
			prepStart, time.Since(prepStart), nil)
	}
	return p, nil
}

// mustProgram memoizes parsing+checking per benchmark source.
func mustProgram(b *benchmarks.Benchmark) *langProgram {
	return compileProgram(b)
}

// newInstance builds (or reuses) an interpreter instance with the ISA
// intrinsics, the detector runtime and an injection plan attached.
// Instances come from a per-cell pool: experiments return them with
// release once every observable product has been copied out. The reset
// path re-binds only the plan-dependent injection runtime; the
// plan-independent ISA and detector externs survive the reset.
func (p *Prepared) newInstance(plan *core.Plan, budget uint64) (*exec.Instance, error) {
	if v := p.pool.Get(); v != nil {
		x := v.(*exec.Instance)
		if err := x.Reset(interp.Options{Budget: budget}); err == nil {
			core.AttachRuntime(x.It, plan)
			return x, nil
		}
	}
	x, err := exec.NewInstance(p.Res, interp.Options{Budget: budget})
	if err != nil {
		return nil, err
	}
	x.It.SetMetrics(p.im)
	if p.vmProg != nil {
		// Engines survive Reset, so pooled instances keep their Machine;
		// only fresh instances attach one (per-instance, over the shared
		// compiled program).
		vm.Attach(x.It, p.vmProg)
	}
	core.AttachRuntime(x.It, plan)
	detect.AttachRuntime(x.It)
	return x, nil
}

// release returns an instance to the reuse pool. Callers must not touch
// the instance afterwards: the next newInstance wipes its state.
func (p *Prepared) release(x *exec.Instance) { p.pool.Put(x) }

// observe runs the entry function and extracts the comparable output:
// the declared output regions plus the program output stream.
func (p *Prepared) observe(x *exec.Instance, spec *benchmarks.RunSpec) ([]byte, *interp.Trap) {
	if _, tr := x.CallExport(p.Cfg.Benchmark.Entry, spec.Args...); tr != nil {
		return nil, tr
	}
	var buf bytes.Buffer
	for _, rg := range spec.Outputs {
		b, err := x.ReadRaw(rg.Addr, rg.Size)
		if err != nil {
			return nil, &interp.Trap{Kind: interp.TrapHalt, Msg: err.Error()}
		}
		if rg.Quantize > 0 {
			b = quantizeF32(b, rg.Quantize)
		}
		buf.Write(b)
	}
	buf.Write(x.It.Output.Bytes())
	return buf.Bytes(), nil
}

// quantizeF32 rounds each float32 cell of b to the given step, modeling
// limited-precision program output. NaNs canonicalize to one pattern.
func quantizeF32(b []byte, step float32) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	for i := 0; i+4 <= len(out); i += 4 {
		v := math.Float32frombits(binary.LittleEndian.Uint32(out[i:]))
		var q float32
		switch {
		case v != v: // NaN
			q = float32(math.NaN())
		default:
			q = float32(math.Round(float64(v/step))) * step
		}
		binary.LittleEndian.PutUint32(out[i:], math.Float32bits(q))
	}
	return out
}

// goldenRun is the product of one golden counting run: everything the
// faulty half of an experiment needs. With an input pool configured it
// is memoized per input seed (see goldenCache). The ring is only set in
// trace mode, which bypasses the cache.
type goldenRun struct {
	Out       []byte
	DynSites  uint64
	DynInstrs uint64
	Label     string
	ring      *trace.Ring
	// draws is the input generator's recorded random stream: the faulty
	// half replays it instead of re-seeding an identical source (see
	// rngreplay.go). nil when the runtime source hides Source64.
	draws []uint64
}

// execGolden performs one golden counting run for the given input seed.
func (p *Prepared) execGolden(inputSeed int64, wc *workerCtx) (*goldenRun, error) {
	goldenPlan := &core.Plan{Mode: core.CountOnly}
	xg, err := p.newInstance(goldenPlan, 0)
	if err != nil {
		return nil, err
	}
	if wc != nil && wc.beat != nil {
		xg.It.SetHeartbeat(wc.beat)
	}
	var gRing *trace.Ring
	if p.Cfg.Trace {
		gRing = trace.NewRing(p.Cfg.TraceCap)
		xg.It.SetRecorder(gRing)
	}
	if p.prof != nil {
		probe := p.prof.Probe()
		xg.It.SetProfiler(probe)
		defer p.prof.Add("golden", probe)
	}
	var grng *rand.Rand
	rsrc := newRecSource(inputSeed)
	if rsrc != nil {
		grng = rand.New(rsrc)
	} else {
		grng = rand.New(rand.NewSource(inputSeed))
	}
	spec, err := p.Cfg.Benchmark.Setup(xg, grng, p.Cfg.Scale)
	if err != nil {
		return nil, err
	}
	out, tr := p.observe(xg, spec)
	if tr != nil {
		return nil, fmt.Errorf("golden run trapped (%s, input %s): %w",
			p.Cfg, spec.Label, tr)
	}
	g := &goldenRun{
		Out:       out,
		DynSites:  goldenPlan.DynSites,
		DynInstrs: xg.It.DynInstrs,
		Label:     spec.Label,
		ring:      gRing,
	}
	if rsrc != nil {
		g.draws = rsrc.draws
	}
	p.release(xg)
	return g, nil
}

// goldenRunFor resolves the golden half of an experiment, through the
// memoization cache when the cell carries one. A cache fill performed
// by this caller lands as a "cache-fill" span on its lane: the span's
// ID derives from the input seed (not the triggering experiment, which
// is scheduling-dependent), so refills forced by evictions repeat the
// same identity and collapse in the canonical span tree.
func (p *Prepared) goldenRunFor(inputSeed int64, wc *workerCtx) (*goldenRun, error) {
	if p.golden == nil {
		return p.execGolden(inputSeed, wc)
	}
	// fillStart stays zero unless this caller was the singleflight
	// leader: the fill closure only runs on the leader's goroutine.
	var fillStart time.Time
	var fillDur time.Duration
	g, err := p.golden.get(inputSeed, func() (*goldenRun, error) {
		fillStart = time.Now()
		g, err := p.execGolden(inputSeed, wc)
		fillDur = time.Since(fillStart)
		return g, err
	})
	if err == nil && !fillStart.IsZero() && wc.tracing() {
		wc.lane.Record("cache-fill", p.spanID("cache-fill", inputSeed),
			p.obs.Root(), fillStart, fillDur, map[string]string{
				"input_seed": strconv.FormatInt(inputSeed, 10),
			})
	}
	return g, err
}

// RunExperiment performs one paired experiment with seed driving both
// the input generation and the fault selection — the historical
// single-seed form, equivalent to an experiment of a study without an
// input pool. Studies with input pools go through RunExperimentAt.
func (p *Prepared) RunExperiment(ctx context.Context, seed int64) (*ExperimentResult, error) {
	return p.runExperiment(ctx, seed, seed, nil)
}

// RunExperimentAt runs the experiment at index i of the deterministic
// study schedule: fault seed ExperimentSeed(i), input seed InputSeed(i).
// Direct calls run outside the study worker pool, so they record no
// timeline spans and emit no heartbeats.
func (p *Prepared) RunExperimentAt(ctx context.Context, i int) (*ExperimentResult, error) {
	return p.runExperimentOn(ctx, i, nil)
}

// runExperimentOn is RunExperimentAt with a worker context attached:
// spans land on the worker's lane and heartbeats on its pulse.
func (p *Prepared) runExperimentOn(ctx context.Context, i int, wc *workerCtx) (*ExperimentResult, error) {
	return p.runExperiment(ctx, p.Cfg.ExperimentSeed(i), p.Cfg.InputSeed(i), wc)
}

// runExperiment performs one paired experiment (§IV-B execution
// strategy): a golden counting run that records the output and the
// dynamic fault-site count N (memoized per input seed when the cell has
// an input pool), then a faulty run with one bit flipped at a uniformly
// chosen dynamic site. Per-phase wall times (golden, faulty, compare)
// and outcome counters land in the study registry. The fault schedule
// depends only on seed; the program input only on inputSeed.
//
// Cancellation is checked only on entry: a started experiment runs to
// completion, so a cancelled study never records a half-finished pair.
func (p *Prepared) runExperiment(ctx context.Context, seed, inputSeed int64, wc *workerCtx) (*ExperimentResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	g, err := p.goldenRunFor(inputSeed, wc)
	if err != nil {
		return nil, err
	}
	p.mx.golden.Since(start)
	if p.prof != nil {
		p.prof.Phase("golden", time.Since(start))
	}
	var expID string
	if wc.tracing() {
		expID = p.spanID("experiment", seed)
		wc.lane.Record("golden", p.spanID("golden", seed), expID,
			start, time.Since(start), map[string]string{
				"dyn_instrs": strconv.FormatUint(g.DynInstrs, 10),
			})
	}
	res := &ExperimentResult{
		DynSites:        g.DynSites,
		GoldenDynInstrs: g.DynInstrs,
		InputLabel:      g.Label,
	}
	if g.DynSites == 0 {
		// No dynamic site in this category was ever reached: nothing to
		// corrupt; the experiment is vacuously benign.
		res.Outcome = OutcomeBenign
		res.Wall = time.Since(start)
		p.finishExperiment(res)
		wc.expSpan(p, expID, seed, start, res)
		return res, nil
	}

	// Fault selection: uniform over the N dynamic sites (§II-B), then a
	// uniform bit position within the chosen site's width.
	frng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	faultPlan := &core.Plan{
		Mode:      core.InjectOnce,
		TargetDyn: 1 + uint64(frng.Int63n(int64(g.DynSites))),
		BitSeed:   uint64(frng.Int63()),
	}

	// Faulty run: same input (same setup seed), bounded by a hang budget.
	faultyStart := time.Now()
	budget := g.DynInstrs*3 + 100_000
	xf, err := p.newInstance(faultPlan, budget)
	if err != nil {
		return nil, err
	}
	if wc != nil && wc.beat != nil {
		xf.It.SetHeartbeat(wc.beat)
	}
	var fRing *trace.Ring
	if p.Cfg.Trace {
		fRing = trace.NewRing(p.Cfg.TraceCap)
		xf.It.SetRecorder(fRing)
	}
	var fProbe *profile.Probe
	if p.prof != nil {
		fProbe = p.prof.Probe()
		xf.It.SetProfiler(fProbe)
	}
	// Same input as the golden half: replay its recorded stream rather
	// than seeding a second identical source (the seeding, not the
	// drawing, is what costs — see rngreplay.go).
	var frand *rand.Rand
	if g.draws != nil {
		frand = rand.New(&replaySource{draws: g.draws, seed: inputSeed})
	} else {
		frand = rand.New(rand.NewSource(inputSeed))
	}
	spec2, err := p.Cfg.Benchmark.Setup(xf, frand, p.Cfg.Scale)
	if err != nil {
		return nil, err
	}
	faultyOut, ftr := p.observe(xf, spec2)
	res.FaultyWall = time.Since(faultyStart)
	p.mx.faulty.Observe(res.FaultyWall)
	if fProbe != nil {
		p.prof.Add("faulty", fProbe)
		p.prof.Phase("faulty", res.FaultyWall)
	}
	if wc.tracing() {
		wc.lane.Record("faulty", p.spanID("faulty", seed), expID,
			faultyStart, res.FaultyWall, map[string]string{
				"dyn_instrs": strconv.FormatUint(xf.It.DynInstrs, 10),
			})
	}

	compareStart := time.Now()
	res.Detected = len(xf.It.Detections) > 0
	res.Record = faultPlan.Record
	switch {
	case ftr != nil:
		res.Outcome = OutcomeCrash
		res.Trap = ftr
		res.Hang = ftr.Kind == interp.TrapBudget
	case !bytes.Equal(g.Out, faultyOut):
		res.Outcome = OutcomeSDC
	default:
		res.Outcome = OutcomeBenign
	}
	if p.Cfg.Trace {
		res.Explanation = p.explain(g.ring, fRing, res, xf, ftr)
		p.Profile.Add(res.Explanation)
	}
	p.mx.compare.Since(compareStart)
	if p.prof != nil {
		p.prof.Phase("compare", time.Since(compareStart))
	}
	if wc.tracing() {
		wc.lane.Record("compare", p.spanID("compare", seed), expID,
			compareStart, time.Since(compareStart), nil)
	}
	p.release(xf)
	res.Wall = time.Since(start)
	p.finishExperiment(res)
	wc.expSpan(p, expID, seed, start, res)
	return res, nil
}

// finishExperiment records an experiment's outcome counters and total
// wall time.
func (p *Prepared) finishExperiment(r *ExperimentResult) {
	p.mx.experiments.Inc()
	p.mx.wall.Observe(r.Wall)
	switch r.Outcome {
	case OutcomeSDC:
		p.mx.sdc.Inc()
	case OutcomeBenign:
		p.mx.benign.Inc()
	case OutcomeCrash:
		p.mx.crash.Inc()
		if r.Hang {
			p.mx.hang.Inc()
		}
	}
	if r.Detected {
		p.mx.detected.Inc()
	}
	if p.prof != nil {
		p.prof.MarkExperiment()
	}
}
