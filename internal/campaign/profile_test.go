package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/passes"
	"vulfi/internal/profile"
)

// profCfg is a small profiled study cell.
func profCfg() Config {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	cfg.Detectors = false
	cfg.Profile = true
	return cfg
}

// stripProfileTimes zeroes every wall-clock field of a profile, leaving
// only the deterministic counts.
func stripProfileTimes(p *profile.Profile) {
	p.WallNS, p.ExpPerSec = 0, 0
	for i := range p.Ops {
		p.Ops[i].TimeNS, p.Ops[i].TimePct = 0, 0
	}
	for i := range p.Sites {
		p.Sites[i].TimeNS = 0
	}
	for i := range p.Phases {
		p.Phases[i].WallNS = 0
	}
	for i := range p.Stacks {
		p.Stacks[i].TimeNS = 0
	}
	p.Timeline = nil
}

// TestStudyProfileTotals: the study's profile must account for exactly
// the instructions its interpreters retired — the golden phase total
// equals the sum of every fresh golden run's DynInstrs (the same
// counter the interpreter itself maintains), and every experiment marks
// the timeline.
func TestStudyProfileTotals(t *testing.T) {
	cfg := profCfg()
	var mu sync.Mutex
	var goldenDyn uint64
	cfg.OnResult = func(_ int, _ int64, r *ExperimentResult) {
		mu.Lock()
		goldenDyn += r.GoldenDynInstrs
		mu.Unlock()
	}
	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := sr.HotProfile
	if p == nil {
		t.Fatal("Profile on but HotProfile nil")
	}
	var phaseDyn uint64
	var golden uint64
	for _, ph := range p.Phases {
		phaseDyn += ph.Dyn
		if ph.Phase == "golden" {
			golden = ph.Dyn
		}
	}
	// No input pool: every experiment runs its golden half fresh, so the
	// profiled golden phase equals the summed interpreter counters.
	if golden != goldenDyn {
		t.Fatalf("golden phase dyn %d, interpreters counted %d", golden, goldenDyn)
	}
	if p.TotalDyn != phaseDyn {
		t.Fatalf("TotalDyn %d != phase sum %d", p.TotalDyn, phaseDyn)
	}
	var opSum uint64
	for _, o := range p.Ops {
		opSum += o.Count
	}
	if opSum != p.TotalDyn {
		t.Fatalf("op table sums to %d, want %d", opSum, p.TotalDyn)
	}
	total := cfg.Campaigns * cfg.Experiments
	if p.Experiments != total {
		t.Fatalf("Experiments = %d, want %d", p.Experiments, total)
	}
	if len(p.Sites) == 0 || len(p.Pairs) == 0 {
		t.Fatalf("profile names %d sites, %d pairs; want both non-empty",
			len(p.Sites), len(p.Pairs))
	}
}

// TestStudyProfileDeterministicAcrossWorkers: profile counts are part
// of the deterministic result surface — only wall-time fields may vary.
func TestStudyProfileDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *profile.Profile {
		cfg := profCfg()
		cfg.Workers = workers
		sr, err := RunStudy(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		stripProfileTimes(sr.HotProfile)
		return sr.HotProfile
	}
	a, b := run(1), run(8)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("worker count changed profile counts:\n1: %s\n8: %s", aj, bj)
	}
}

// TestStudyProfileOffByteIdentical: with Profile unset the exported
// study JSON must not change at all — no hot_profile key, no residue.
func TestStudyProfileOffByteIdentical(t *testing.T) {
	cfg := profCfg()
	cfg.Profile = false
	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sr.HotProfile != nil {
		t.Fatal("Profile off but HotProfile set")
	}
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("hot_profile")) {
		t.Fatal("profiler-off study JSON mentions hot_profile")
	}

	// The profiled run of the same cell differs only by the hot_profile
	// key (and the legitimately non-deterministic wall fields).
	cfg2 := profCfg()
	sr2, err := RunStudy(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	sr2.HotProfile = nil
	var buf2 bytes.Buffer
	if err := sr2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	var a, b map[string]any
	if err := json.Unmarshal(buf.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf2.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	for _, m := range []map[string]any{a, b} {
		for k := range m {
			if len(k) > 4 && k[:4] == "wall" {
				delete(m, k)
			}
		}
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("profiling changed non-profile output:\noff: %s\non:  %s", aj, bj)
	}
}

// TestStudyProfileResume: a resumed profiled study produces the same
// statistics as an uninterrupted one, and its profile covers only the
// freshly executed tail (replayed checkpoints never re-execute).
func TestStudyProfileResume(t *testing.T) {
	cfg := profCfg()
	completed := map[int]*ExperimentResult{}
	icfg := cfg
	icfg.OnResult = func(i int, _ int64, r *ExperimentResult) {
		completed[i] = r
	}
	icfg.Workers = 1
	full, err := RunStudy(context.Background(), icfg)
	if err != nil {
		t.Fatal(err)
	}

	half := map[int]*ExperimentResult{}
	total := cfg.Campaigns * cfg.Experiments
	for i := 0; i < total/2; i++ {
		half[i] = completed[i]
	}
	rcfg := cfg
	rcfg.Completed = half
	rcfg.Workers = 1
	resumed, err := RunStudy(context.Background(), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Totals.SDC != full.Totals.SDC ||
		resumed.Totals.Benign != full.Totals.Benign ||
		resumed.Totals.Crash != full.Totals.Crash {
		t.Fatalf("resumed outcome totals differ: %+v vs %+v",
			resumed.Totals, full.Totals)
	}
	rp, fp := resumed.HotProfile, full.HotProfile
	if rp.Experiments != total-total/2 {
		t.Fatalf("resumed profile marks %d experiments, want %d (fresh tail only)",
			rp.Experiments, total-total/2)
	}
	if rp.TotalDyn == 0 || rp.TotalDyn >= fp.TotalDyn {
		t.Fatalf("resumed profile dyn %d, want in (0, %d)", rp.TotalDyn, fp.TotalDyn)
	}
}
