package campaign

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"vulfi/internal/obs"
)

// workerCtx carries one study worker's observability identity through
// an experiment: its span lane (nil when Cfg.Timeline is off), its
// heartbeat pulse (nil when Cfg.Heartbeat is unset) and the index of
// the experiment currently executing. One workerCtx belongs to exactly
// one worker goroutine, so none of its fields need synchronization.
type workerCtx struct {
	worker int
	index  int
	lane   *obs.Lane
	beat   func(uint64)
}

// tracing reports whether this worker records spans. Safe on nil.
func (wc *workerCtx) tracing() bool { return wc != nil && wc.lane != nil }

// expSpan records the enclosing experiment span once the experiment
// has fully finished. Every attribute derives from the deterministic
// schedule (index, seed) or the deterministic result (outcome, site),
// never from timing or scheduling, so the canonical span tree is
// identical across runs and worker counts.
func (wc *workerCtx) expSpan(p *Prepared, id string, seed int64, start time.Time, r *ExperimentResult) {
	if !wc.tracing() {
		return
	}
	attrs := map[string]string{
		"index":    strconv.Itoa(wc.index),
		"seed":     strconv.FormatInt(seed, 10),
		"outcome":  r.Outcome.String(),
		"detected": strconv.FormatBool(r.Detected),
		"input":    r.InputLabel,
	}
	if r.DynSites > 0 {
		attrs["site"] = r.Record.String()
	}
	wc.lane.Record("experiment", id, p.obs.Root(), start, r.Wall, attrs)
}

// workerCtx builds worker w's observability context (nil when neither
// spans nor heartbeats are wanted — the common case costs nothing).
func (p *Prepared) workerCtx(w int) *workerCtx {
	var wc *workerCtx
	if p.obs != nil && w < p.obs.NumLanes() {
		wc = &workerCtx{worker: w, lane: p.obs.Lane(w)}
	}
	if hb := p.Cfg.Heartbeat; hb != nil {
		if wc == nil {
			wc = &workerCtx{worker: w}
		}
		wc.beat = func(uint64) { hb(w) }
	}
	return wc
}

// spanID derives a deterministic span ID within the study's trace.
func (p *Prepared) spanID(name string, n int64) string {
	return obs.DeriveSpanID(p.obs.TraceID(), name, n)
}

// traceIdentity resolves the study's trace identity: adopted from
// Config.TraceParent when set (a remote study joins the submitting
// client's trace), derived deterministically from the study key
// otherwise.
func (c Config) traceIdentity() (traceID, parent string) {
	if c.TraceParent != "" {
		if tid, sid, err := obs.ParseTraceparent(c.TraceParent); err == nil {
			return tid, sid
		}
		// Malformed traceparents are rejected by Config.Validate before
		// any collector exists; falling through derives a local trace.
	}
	return obs.DeriveTraceID(fmt.Sprintf("%s seed=%d", c.String(), c.Seed)), ""
}

// newTimelineCollector builds the study's span collector: one lane per
// worker (the same worker count RunStudy will use) plus the control
// lane, all anchored to the prepare epoch so the compile span sits at
// offset zero.
func newTimelineCollector(cfg Config, epoch time.Time) *obs.Collector {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tid, parent := cfg.traceIdentity()
	root := obs.DeriveSpanID(tid, studyRootName(cfg), cfg.Seed)
	return obs.NewCollector(tid, root, parent, workers, epoch)
}

// studyRootName names the study's root span: "study" for a whole
// study, "study[lo,hi)" for a shard. Shards of one study share the
// coordinator's trace ID (via traceparent) and the study seed; the
// range keeps their root span IDs distinct — and their rendered names
// tell shards apart in a fleet-merged trace.
func studyRootName(cfg Config) string {
	if cfg.ShardEnd > 0 {
		return fmt.Sprintf("study[%d,%d)", cfg.ShardStart, cfg.ShardEnd)
	}
	return "study"
}

// studyAttrs are the root span's attributes. Deliberately excludes the
// worker count (so canonical trees compare across parallelism) and any
// timing.
func studyAttrs(cfg Config, total int) map[string]string {
	backend := cfg.Backend
	if backend == "" {
		backend = "tree"
	}
	return map[string]string{
		"benchmark":   cfg.Benchmark.Name,
		"isa":         cfg.ISA.Name,
		"category":    cfg.Category.String(),
		"backend":     backend,
		"seed":        strconv.FormatInt(cfg.Seed, 10),
		"experiments": strconv.Itoa(total),
	}
}
