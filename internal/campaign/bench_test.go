package campaign

import (
	"context"
	"os"
	"strconv"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// BenchmarkStudyThroughput measures whole-study throughput (prepare
// excluded) on the default-scale AVX/pure-data cell under the
// input-pool knob. The pool size comes from VULFI_BENCH_INPUTS
// (unset/0 = no pool, no cache) so the cached and uncached modes share
// one benchmark name and benchstat can diff them directly:
//
//	VULFI_BENCH_INPUTS=0 go test -run '^$' -bench StudyThroughput -count 10 ./internal/campaign/ > uncached.txt
//	VULFI_BENCH_INPUTS=4 go test -run '^$' -bench StudyThroughput -count 10 ./internal/campaign/ > cached.txt
//	benchstat uncached.txt cached.txt
//
// scripts/bench-cache.sh automates the pairing (see also the CI
// cache-bench job, which fails on uncached-path regressions).
//
// VULFI_BENCH_BACKEND selects the execution backend the same way
// (unset/"tree" = reference tree-walker, "vm" = compiled bytecode), so
// the backend speedup is benchstat-diffable under one name too:
//
//	VULFI_BENCH_BACKEND=tree go test -run '^$' -bench StudyThroughput -count 10 ./internal/campaign/ > tree.txt
//	VULFI_BENCH_BACKEND=vm   go test -run '^$' -bench StudyThroughput -count 10 ./internal/campaign/ > vm.txt
//	benchstat tree.txt vm.txt
//
// scripts/bench-backend.sh automates that pairing and enforces the
// committed BENCH_7.json speedup floor.
func BenchmarkStudyThroughput(b *testing.B) {
	inputs := 0
	if s := os.Getenv("VULFI_BENCH_INPUTS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("VULFI_BENCH_INPUTS=%q: %v", s, err)
		}
		inputs = v
	}
	backend := os.Getenv("VULFI_BENCH_BACKEND")
	cfg := Config{
		Benchmark: benchmarks.VectorCopy, ISA: isa.AVX,
		Category: passes.PureData, Scale: benchmarks.ScaleDefault,
		Experiments: 25, Campaigns: 2, Seed: 1, Workers: 1,
		Inputs: inputs, Backend: backend,
	}
	if err := cfg.Validate(); err != nil {
		b.Fatalf("VULFI_BENCH_BACKEND=%q: %v", backend, err)
	}
	p, err := Prepare(cfg)
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := p.RunStudy(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		total += sr.Totals.Experiments
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "exp/s")
}

// BenchmarkCampaignThroughput measures end-to-end experiment throughput
// (prepare excluded): one golden/faulty pair per iteration over the
// deterministic seed schedule. The untraced variant is the PR 3
// regression gate — with Config.Trace off the recorder hook is a single
// nil check in the interpreter's hot loop, so untraced throughput must
// stay within noise (±2%) of the pre-tracing baseline:
//
//	go test -run xxx -bench CampaignThroughput/untraced -count 10 ./internal/campaign/
func BenchmarkCampaignThroughput(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "untraced"
		if traced {
			name = "traced"
		}
		b.Run(name, func(b *testing.B) {
			cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
			cfg.Trace = traced
			p, err := Prepare(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := p.RunExperiment(context.Background(), cfg.ExperimentSeed(i%64))
				if err != nil {
					b.Fatal(err)
				}
				if traced && r.DynSites > 0 && r.Explanation == nil {
					b.Fatal("traced experiment missing explanation")
				}
			}
			b.ReportMetric(float64(b.N), "experiments")
		})
	}
}

// BenchmarkRecorderOverhead isolates the interpreter-side cost: the same
// golden run with no recorder attached vs with a trace ring attached,
// bounding what Config.Trace costs per retired instruction.
func BenchmarkRecorderOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "detached"
		if traced {
			name = "attached"
		}
		b.Run(name, func(b *testing.B) {
			cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
			cfg.Trace = traced
			p, err := Prepare(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.RunExperiment(context.Background(), cfg.ExperimentSeed(0)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
