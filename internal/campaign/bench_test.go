package campaign

import (
	"context"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/passes"
)

// BenchmarkCampaignThroughput measures end-to-end experiment throughput
// (prepare excluded): one golden/faulty pair per iteration over the
// deterministic seed schedule. The untraced variant is the PR 3
// regression gate — with Config.Trace off the recorder hook is a single
// nil check in the interpreter's hot loop, so untraced throughput must
// stay within noise (±2%) of the pre-tracing baseline:
//
//	go test -run xxx -bench CampaignThroughput/untraced -count 10 ./internal/campaign/
func BenchmarkCampaignThroughput(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "untraced"
		if traced {
			name = "traced"
		}
		b.Run(name, func(b *testing.B) {
			cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
			cfg.Trace = traced
			p, err := Prepare(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := p.RunExperiment(context.Background(), cfg.ExperimentSeed(i%64))
				if err != nil {
					b.Fatal(err)
				}
				if traced && r.DynSites > 0 && r.Explanation == nil {
					b.Fatal("traced experiment missing explanation")
				}
			}
			b.ReportMetric(float64(b.N), "experiments")
		})
	}
}

// BenchmarkRecorderOverhead isolates the interpreter-side cost: the same
// golden run with no recorder attached vs with a trace ring attached,
// bounding what Config.Trace costs per retired instruction.
func BenchmarkRecorderOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "detached"
		if traced {
			name = "attached"
		}
		b.Run(name, func(b *testing.B) {
			cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
			cfg.Trace = traced
			p, err := Prepare(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.RunExperiment(context.Background(), cfg.ExperimentSeed(0)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
