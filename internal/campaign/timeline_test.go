package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"sync/atomic"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/obs"
	"vulfi/internal/passes"
)

// tlCfg is a small timeline-traced study cell with an input pool (so
// cache-fill spans are exercised).
func tlCfg() Config {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	cfg.Detectors = false
	cfg.Timeline = true
	cfg.Inputs = 4
	return cfg
}

// TestStudyTimelineStructure: the span tree must mirror the study's
// actual shape — one root, one compile span, one experiment span per
// index with golden children parented under it, and exactly one
// cache-fill span per pool seed.
func TestStudyTimelineStructure(t *testing.T) {
	cfg := tlCfg()
	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := sr.Timeline
	if tl == nil {
		t.Fatal("Timeline on but StudyResult.Timeline nil")
	}
	if tl.TraceID == "" || tl.Root == "" || tl.Parent != "" {
		t.Fatalf("bad identity: trace=%q root=%q parent=%q",
			tl.TraceID, tl.Root, tl.Parent)
	}
	total := cfg.Campaigns * cfg.Experiments
	byName := map[string][]obs.Span{}
	byID := map[string]obs.Span{}
	for _, s := range tl.Spans {
		byName[s.Name] = append(byName[s.Name], s)
		byID[s.ID] = s
	}
	if n := len(byName["study"]); n != 1 {
		t.Fatalf("study spans = %d, want 1", n)
	}
	root := byName["study"][0]
	if root.ID != tl.Root || root.Parent != "" {
		t.Fatalf("root span %+v does not match timeline root %s", root, tl.Root)
	}
	if root.Attrs["benchmark"] != cfg.Benchmark.Name ||
		root.Attrs["backend"] != "tree" {
		t.Fatalf("root attrs = %v", root.Attrs)
	}
	if n := len(byName["compile"]); n != 1 {
		t.Fatalf("compile spans = %d, want 1", n)
	}
	if byName["compile"][0].Parent != tl.Root {
		t.Fatal("compile span not parented to root")
	}
	if n := len(byName["experiment"]); n != total {
		t.Fatalf("experiment spans = %d, want %d", n, total)
	}
	if n := len(byName["golden"]); n != total {
		t.Fatalf("golden spans = %d, want %d", n, total)
	}
	if n := len(byName["cache-fill"]); n != cfg.Inputs {
		t.Fatalf("cache-fill spans = %d, want one per pool seed (%d)",
			n, cfg.Inputs)
	}
	seenIdx := map[int]bool{}
	for _, s := range byName["experiment"] {
		if s.Parent != tl.Root {
			t.Fatalf("experiment %s parented to %q, want root", s.ID, s.Parent)
		}
		idx, err := strconv.Atoi(s.Attrs["index"])
		if err != nil || idx < 0 || idx >= total {
			t.Fatalf("experiment index attr %q", s.Attrs["index"])
		}
		seenIdx[idx] = true
		if want := strconv.FormatInt(cfg.ExperimentSeed(idx), 10); s.Attrs["seed"] != want {
			t.Fatalf("experiment %d seed attr %q, want %s", idx, s.Attrs["seed"], want)
		}
		if s.Attrs["outcome"] == "" {
			t.Fatalf("experiment %d has no outcome attr", idx)
		}
	}
	if len(seenIdx) != total {
		t.Fatalf("experiment spans cover %d distinct indices, want %d",
			len(seenIdx), total)
	}
	// Phase spans nest under their experiment.
	for _, name := range []string{"golden", "faulty", "compare"} {
		for _, s := range byName[name] {
			parent, ok := byID[s.Parent]
			if !ok || parent.Name != "experiment" {
				t.Fatalf("%s span %s: parent %q is not an experiment span",
					name, s.ID, s.Parent)
			}
		}
	}
	if len(byName["faulty"]) == 0 || len(byName["faulty"]) != len(byName["compare"]) {
		t.Fatalf("faulty spans = %d, compare spans = %d",
			len(byName["faulty"]), len(byName["compare"]))
	}
	// Span offsets sit inside the study window (compile precedes the
	// root span, which starts after Prepare).
	for _, s := range tl.Spans {
		if s.Name == "compile" {
			continue
		}
		if s.StartNS < 0 || s.StartNS > tl.WallNS+root.StartNS {
			t.Fatalf("span %s (%s) outside study window: start %d, wall %d",
				s.ID, s.Name, s.StartNS, tl.WallNS)
		}
	}
}

// TestStudyTimelineDeterministicAcrossWorkers: the canonical span tree
// (IDs, parents, names, attributes) is part of the deterministic result
// surface; only lanes and timestamps may vary with parallelism.
func TestStudyTimelineDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []obs.CanonicalSpan {
		cfg := tlCfg()
		cfg.Workers = workers
		sr, err := RunStudy(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sr.Timeline.Canonical()
	}
	a, b := run(1), run(8)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("worker count changed the canonical span tree:\n1: %s\n8: %s", aj, bj)
	}
}

// TestStudyTimelineOffByteIdentical: with Timeline unset the exported
// study JSON must not change at all — no timeline key, no residue.
func TestStudyTimelineOffByteIdentical(t *testing.T) {
	cfg := tlCfg()
	cfg.Timeline = false
	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Timeline != nil {
		t.Fatal("Timeline off but StudyResult.Timeline set")
	}
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("timeline")) {
		t.Fatal("timeline-off study JSON mentions timeline")
	}

	// The traced run of the same cell differs only by the timeline key
	// (and the legitimately non-deterministic wall fields).
	sr2, err := RunStudy(context.Background(), tlCfg())
	if err != nil {
		t.Fatal(err)
	}
	sr2.Timeline = nil
	var buf2 bytes.Buffer
	if err := sr2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	var a, b map[string]any
	if err := json.Unmarshal(buf.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf2.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	for _, m := range []map[string]any{a, b} {
		for k := range m {
			if len(k) > 4 && k[:4] == "wall" {
				delete(m, k)
			}
		}
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("tracing changed non-timeline output:\noff: %s\non:  %s", aj, bj)
	}
}

// TestStudyTimelineResume: a resumed study's timeline spans only the
// freshly executed tail — replayed checkpoints never re-execute, so
// they record no spans.
func TestStudyTimelineResume(t *testing.T) {
	cfg := tlCfg()
	completed := map[int]*ExperimentResult{}
	icfg := cfg
	icfg.OnResult = func(i int, _ int64, r *ExperimentResult) {
		completed[i] = r
	}
	icfg.Workers = 1
	full, err := RunStudy(context.Background(), icfg)
	if err != nil {
		t.Fatal(err)
	}

	total := cfg.Campaigns * cfg.Experiments
	half := map[int]*ExperimentResult{}
	for i := 0; i < total/2; i++ {
		half[i] = completed[i]
	}
	rcfg := cfg
	rcfg.Completed = half
	rcfg.Workers = 1
	resumed, err := RunStudy(context.Background(), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Totals.SDC != full.Totals.SDC ||
		resumed.Totals.Benign != full.Totals.Benign {
		t.Fatalf("resumed outcome totals differ: %+v vs %+v",
			resumed.Totals, full.Totals)
	}
	var fresh []int
	for _, s := range resumed.Timeline.Spans {
		if s.Name != "experiment" {
			continue
		}
		idx, _ := strconv.Atoi(s.Attrs["index"])
		fresh = append(fresh, idx)
		if idx < total/2 {
			t.Fatalf("replayed experiment %d has a span — resume must trace the fresh tail only", idx)
		}
	}
	if len(fresh) != total-total/2 {
		t.Fatalf("resumed timeline has %d experiment spans, want %d",
			len(fresh), total-total/2)
	}
	// Trace identity is schedule-derived, so both halves share it.
	if resumed.Timeline.TraceID != full.Timeline.TraceID {
		t.Fatalf("resume changed trace ID: %s vs %s",
			resumed.Timeline.TraceID, full.Timeline.TraceID)
	}
}

// TestStudyTimelineTraceParent: a study given a traceparent adopts its
// trace ID and parents the root span under the remote span.
func TestStudyTimelineTraceParent(t *testing.T) {
	remoteTrace := obs.DeriveTraceID("client")
	remoteSpan := obs.DeriveSpanID(remoteTrace, "remote-study", 0)
	cfg := tlCfg()
	cfg.TraceParent = obs.FormatTraceparent(remoteTrace, remoteSpan)
	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := sr.Timeline
	if tl.TraceID != remoteTrace {
		t.Fatalf("trace ID %s, want adopted %s", tl.TraceID, remoteTrace)
	}
	if tl.Parent != remoteSpan {
		t.Fatalf("timeline parent %q, want %s", tl.Parent, remoteSpan)
	}
	for _, s := range tl.Spans {
		if s.ID == tl.Root && s.Parent != remoteSpan {
			t.Fatalf("root span parent %q, want remote span %s", s.Parent, remoteSpan)
		}
	}
}

// TestValidateTraceParent: the single Validate gate rejects malformed
// traceparents everywhere at once.
func TestValidateTraceParent(t *testing.T) {
	cfg := tlCfg()
	cfg.TraceParent = "not-a-traceparent"
	if err := cfg.Validate(); err == nil {
		t.Fatal("malformed TraceParent accepted")
	}
	cfg.TraceParent = obs.FormatTraceparent(
		obs.DeriveTraceID("ok"), obs.DeriveSpanID(obs.DeriveTraceID("ok"), "s", 1))
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid TraceParent rejected: %v", err)
	}
}

// TestStudyHeartbeat: the worker pool pulses Config.Heartbeat from the
// executing interpreter on both backends.
func TestStudyHeartbeat(t *testing.T) {
	for _, backend := range []string{"tree", "vm"} {
		t.Run(backend, func(t *testing.T) {
			cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
			cfg.Backend = backend
			var beats atomic.Uint64
			cfg.Heartbeat = func(worker int) { beats.Add(1) }
			if _, err := RunStudy(context.Background(), cfg); err != nil {
				t.Fatal(err)
			}
			if beats.Load() == 0 {
				t.Fatalf("no heartbeats observed on backend %s", backend)
			}
		})
	}
}
