package campaign

import (
	"container/list"
	"sync"

	"vulfi/internal/telemetry"
)

// goldenCacheMaxEntries bounds the cache regardless of the configured
// pool size, so a huge Inputs value cannot pin an unbounded number of
// golden outputs in memory. Entries beyond the bound are evicted in LRU
// order and transparently re-run on the next miss.
const goldenCacheMaxEntries = 1024

// goldenCacheCap sizes the cache for a pool of k input seeds: ideally
// one entry per pool seed, clamped to goldenCacheMaxEntries.
func goldenCacheCap(k int) int {
	if k > goldenCacheMaxEntries {
		return goldenCacheMaxEntries
	}
	return k
}

// goldenCache memoizes golden counting runs by input seed: a
// concurrency-safe bounded LRU with singleflight semantics, so the pool
// workers of a study never duplicate the golden run of a shared input.
//
// Hit/miss/eviction counts and the resident footprint are published on
// the study registry as cache.hits, cache.misses, cache.evictions,
// cache.bytes and cache.entries; cache.misses equals the number of
// golden executions actually performed.
//
// The cache stores results only — it never observes wall clocks — so a
// cached study's results are byte-identical to an uncached run of the
// same input pool (the per-result Wall fields are the only
// nondeterminism either way).
type goldenCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List              // front = most recently used *goldenEntry
	items map[int64]*list.Element // input seed -> element in order
	size  int64                   // bytes of resident golden outputs

	hits, misses, evictions *telemetry.Counter
	bytes, entries          *telemetry.Gauge
}

// goldenEntry is one memoized (or in-flight) golden run. ready is
// closed once run/err are set; waiters block on it instead of re-running
// the golden execution (singleflight). In-flight entries are pinned:
// the evictor skips them until their leader completes.
type goldenEntry struct {
	seed  int64
	ready chan struct{}
	run   *goldenRun
	err   error
}

func newGoldenCache(capacity int, reg *telemetry.Registry) *goldenCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &goldenCache{
		cap:       capacity,
		order:     list.New(),
		items:     map[int64]*list.Element{},
		hits:      reg.Counter("cache.hits"),
		misses:    reg.Counter("cache.misses"),
		evictions: reg.Counter("cache.evictions"),
		bytes:     reg.Gauge("cache.bytes"),
		entries:   reg.Gauge("cache.entries"),
	}
}

// get returns the memoized golden run for seed, invoking fill exactly
// once per resident seed: the first caller becomes the leader and runs
// fill outside the lock; concurrent callers for the same seed block on
// the leader's result. A failed fill is removed from the cache so a
// later retry re-runs it rather than replaying the error forever.
func (c *goldenCache) get(seed int64, fill func() (*goldenRun, error)) (*goldenRun, error) {
	c.mu.Lock()
	if el, ok := c.items[seed]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*goldenEntry)
		c.mu.Unlock()
		c.hits.Inc()
		<-e.ready
		return e.run, e.err
	}
	e := &goldenEntry{seed: seed, ready: make(chan struct{})}
	c.items[seed] = c.order.PushFront(e)
	c.evict()
	c.entries.Set(int64(len(c.items)))
	c.mu.Unlock()
	c.misses.Inc()

	run, err := fill()
	c.mu.Lock()
	e.run, e.err = run, err
	close(e.ready)
	if err != nil {
		// The evictor may have raced us out already; only remove our own
		// entry, never a fresh one for the same seed.
		if el, ok := c.items[seed]; ok && el.Value.(*goldenEntry) == e {
			c.order.Remove(el)
			delete(c.items, seed)
		}
	} else if _, ok := c.items[seed]; ok {
		c.size += int64(len(run.Out))
		c.bytes.Set(c.size)
	}
	c.entries.Set(int64(len(c.items)))
	c.mu.Unlock()
	return run, err
}

// evict drops completed least-recently-used entries until the cache is
// within capacity. In-flight entries are pinned (their leader still
// needs them for singleflight), so the cache can transiently exceed
// capacity while many distinct seeds are running. Caller holds mu.
func (c *goldenCache) evict() {
	for el := c.order.Back(); el != nil && len(c.items) > c.cap; {
		e := el.Value.(*goldenEntry)
		prev := el.Prev()
		select {
		case <-e.ready:
			if e.err == nil && e.run != nil {
				c.size -= int64(len(e.run.Out))
			}
			c.order.Remove(el)
			delete(c.items, e.seed)
			c.evictions.Inc()
		default: // in flight: pinned
		}
		el = prev
	}
	c.bytes.Set(c.size)
}
