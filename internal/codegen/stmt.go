package codegen

import (
	"fmt"
	"sort"

	"vulfi/internal/ir"
	"vulfi/internal/lang"
)

func (cg *fnGen) stmt(s lang.Stmt) {
	if cg.done {
		return
	}
	switch st := s.(type) {
	case *lang.BlockStmt:
		for _, sub := range st.Stmts {
			cg.stmt(sub)
		}
	case *lang.DeclStmt:
		cg.declStmt(st)
	case *lang.AssignStmt:
		cg.assignStmt(st)
	case *lang.IncDecStmt:
		cg.incDecStmt(st)
	case *lang.IfStmt:
		cg.ifStmt(st)
	case *lang.WhileStmt:
		cg.whileStmt(st)
	case *lang.ForStmt:
		cg.forStmt(st)
	case *lang.ForeachStmt:
		cg.foreachStmt(st)
	case *lang.ReturnStmt:
		cg.returnStmt(st)
	case *lang.ExprStmt:
		cg.expr(st.X)
	default:
		panic(fmt.Sprintf("codegen: unhandled statement %T", s))
	}
}

func (cg *fnGen) declStmt(st *lang.DeclStmt) {
	sym := cg.mg.prog.DeclSyms[st]
	if sym.Type.Array {
		elem := scalarType(sym.Type.Base)
		cg.env[sym] = cg.bu.Alloca(elem, int(sym.ArrayLen), sym.Name)
		return
	}
	ty := cg.mg.irType(sym.Type)
	if st.Init == nil {
		cg.env[sym] = ir.ConstZero(ty)
		return
	}
	v := cg.expr(st.Init)
	cg.env[sym] = cg.convert(v, cg.mg.prog.Types[st.Init], sym.Type, sym.Name)
}

func (cg *fnGen) assignStmt(st *lang.AssignStmt) {
	lt := cg.lhsType(st.LHS)
	newVal := cg.rhsValue(st.Op, st.LHS, st.RHS, lt)
	cg.storeTo(st.LHS, newVal, lt)
}

func (cg *fnGen) lhsType(lhs lang.Expr) lang.VType {
	if id, ok := lhs.(*lang.Ident); ok {
		return cg.mg.prog.Refs[id].Type
	}
	return cg.mg.prog.Types[lhs]
}

// storeTo writes newVal (already of type lt) to an assignable location.
func (cg *fnGen) storeTo(lhs lang.Expr, newVal ir.Value, lt lang.VType) {
	switch l := lhs.(type) {
	case *lang.Ident:
		sym := cg.mg.prog.Refs[l]
		if sym.Type.Uniform {
			cg.env[sym] = newVal // sema guarantees uniform control flow
		} else {
			cg.env[sym] = cg.maskedMerge(cg.env[sym], newVal, sym.Name)
		}
	case *lang.IndexExpr:
		cg.storeIndex(l, newVal, lt)
	default:
		panic("codegen: bad assign target")
	}
}

// rhsValue computes the value to store for "lhs op= rhs", converted to lt.
func (cg *fnGen) rhsValue(op lang.Kind, lhs, rhs lang.Expr, lt lang.VType) ir.Value {
	r := cg.convert(cg.expr(rhs), cg.mg.prog.Types[rhs], lt, "")
	if op == lang.Assign {
		return r
	}
	l := cg.convert(cg.expr(lhs), cg.mg.prog.Types[lhs], lt, "")
	var iop, fop ir.Op
	switch op {
	case lang.PlusAssign:
		iop, fop = ir.OpAdd, ir.OpFAdd
	case lang.MinusAssign:
		iop, fop = ir.OpSub, ir.OpFSub
	case lang.StarAssign:
		iop, fop = ir.OpMul, ir.OpFMul
	case lang.SlashAssign:
		iop, fop = ir.OpSDiv, ir.OpFDiv
	default:
		panic("codegen: bad compound assignment")
	}
	if lt.IsFloatBase() {
		return cg.bu.Bin(fop, l, r, "")
	}
	return cg.bu.Bin(iop, l, r, "")
}

func (cg *fnGen) incDecStmt(st *lang.IncDecStmt) {
	lt := cg.lhsType(st.LHS)
	l := cg.expr(st.LHS)
	var one ir.Value
	if lt.IsFloatBase() {
		one = ir.ConstFloat(scalarType(lt.Base), 1)
	} else {
		one = ir.ConstInt(scalarType(lt.Base), 1)
	}
	if !lt.Uniform {
		one = ir.ConstSplat(cg.mg.vl, one.(*ir.Const))
	}
	var newVal ir.Value
	switch {
	case st.Op == lang.PlusPlus && lt.IsFloatBase():
		newVal = cg.bu.FAdd(l, one, "")
	case st.Op == lang.PlusPlus:
		newVal = cg.bu.Add(l, one, "")
	case lt.IsFloatBase():
		newVal = cg.bu.FSub(l, one, "")
	default:
		newVal = cg.bu.Sub(l, one, "")
	}
	cg.storeTo(st.LHS, newVal, lt)
}

func (cg *fnGen) returnStmt(st *lang.ReturnStmt) {
	if st.Val == nil {
		cg.bu.Ret(nil)
	} else {
		v := cg.convert(cg.expr(st.Val), cg.mg.prog.Types[st.Val], cg.fi.Ret, "retval")
		cg.bu.Ret(v)
	}
	cg.done = true
}

func (cg *fnGen) ifStmt(st *lang.IfStmt) {
	condT := cg.mg.prog.Types[st.Cond]
	if condT.Uniform {
		cg.uniformIf(st)
	} else {
		cg.varyingIf(st)
	}
}

// uniformIf lowers a real branch with SSA joins.
func (cg *fnGen) uniformIf(st *lang.IfStmt) {
	cond := cg.expr(st.Cond)
	branchB := cg.bu.Block()
	thenB := cg.newBlock("if.then")
	joinB := cg.newBlock("if.end")
	elseB := joinB
	if st.Else != nil {
		elseB = cg.newBlock("if.else")
	}
	cg.bu.CondBr(cond, thenB, elseB)
	preEnv := cg.snapshotEnv()

	cg.bu.SetBlock(thenB)
	cg.stmt(st.Then)
	thenEnv, thenEnd, thenDone := cg.snapshotEnv(), cg.bu.Block(), cg.done
	if !thenDone {
		cg.bu.Br(joinB)
	}

	elseEnv, elseEnd := preEnv, cg.bu.Block()
	elseDone := false
	if st.Else != nil {
		cg.done = false
		cg.env = cloneEnv(preEnv)
		cg.bu.SetBlock(elseB)
		cg.stmt(st.Else)
		elseEnv, elseEnd, elseDone = cg.snapshotEnv(), cg.bu.Block(), cg.done
		if !elseDone {
			cg.bu.Br(joinB)
		}
	} else {
		// Fall-through edge from the branch point.
		elseEnd = branchB
	}

	cg.bu.SetBlock(joinB)
	switch {
	case thenDone && elseDone:
		cg.bu.Unreachable()
		cg.done = true
		return
	case thenDone:
		cg.env = cloneEnv(elseEnv)
	case elseDone:
		cg.env = cloneEnv(thenEnv)
	default:
		cg.env = mergeEnvs(cg.bu, thenEnv, thenEnd, elseEnv, elseEnd)
	}
	cg.done = false
}

func cloneEnv(e map[*lang.Symbol]ir.Value) map[*lang.Symbol]ir.Value {
	out := make(map[*lang.Symbol]ir.Value, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// mergeEnvs creates phis in the current (join) block for symbols whose
// values differ between the two incoming paths. Symbols are processed in
// sorted-name order so generated IR is deterministic.
func mergeEnvs(bu *ir.Builder, aEnv map[*lang.Symbol]ir.Value, aEnd *ir.Block,
	bEnv map[*lang.Symbol]ir.Value, bEnd *ir.Block) map[*lang.Symbol]ir.Value {
	out := make(map[*lang.Symbol]ir.Value, len(aEnv))
	var differ []*lang.Symbol
	for sym, av := range aEnv {
		bv, ok := bEnv[sym]
		if !ok || av == bv {
			out[sym] = av
			continue
		}
		differ = append(differ, sym)
	}
	sort.Slice(differ, func(i, j int) bool { return differ[i].Name < differ[j].Name })
	for _, sym := range differ {
		phi := bu.Phi(aEnv[sym].Type(), sym.Name+".merge")
		ir.AddIncoming(phi, aEnv[sym], aEnd)
		ir.AddIncoming(phi, bEnv[sym], bEnd)
		out[sym] = phi
	}
	return out
}

// varyingIf lowers to mask predication: both branches execute under
// refined masks; assignments blend lane-wise.
func (cg *fnGen) varyingIf(st *lang.IfStmt) {
	cond := cg.expr(st.Cond) // <Vl x i1>
	oldMask, oldAllOn := cg.mask, cg.allOn

	thenMask := cond
	if !oldAllOn {
		thenMask = cg.bu.And(oldMask, cond, "mask.then")
	}
	cg.mask, cg.allOn = thenMask, false
	cg.stmt(st.Then)

	if st.Else != nil {
		notCond := cg.bu.Xor(cond, ir.ConstSplat(cg.mg.vl, ir.ConstBool(true)), "notcond")
		elseMask := ir.Value(notCond)
		if !oldAllOn {
			elseMask = cg.bu.And(oldMask, notCond, "mask.else")
		}
		cg.mask, cg.allOn = elseMask, false
		cg.stmt(st.Else)
	}
	cg.mask, cg.allOn = oldMask, oldAllOn
}

func (cg *fnGen) whileStmt(st *lang.WhileStmt) {
	condT := cg.mg.prog.Types[st.Cond]
	if condT.Uniform {
		cg.uniformLoop(st.Cond, st.Body, nil)
	} else {
		cg.varyingWhile(st)
	}
}

func (cg *fnGen) forStmt(st *lang.ForStmt) {
	if st.Init != nil {
		cg.stmt(st.Init)
	}
	cg.uniformLoop(st.Cond, st.Body, st.Post)
}

// uniformLoop lowers while/for with a uniform condition to a real loop
// with loop-carried phis for every symbol the body (or post) assigns.
func (cg *fnGen) uniformLoop(cond lang.Expr, body, post lang.Stmt) {
	var scan []lang.Stmt
	scan = append(scan, body)
	if post != nil {
		scan = append(scan, post)
	}
	syms := cg.assignedSymbols(&lang.BlockStmt{Stmts: scan})

	preB := cg.bu.Block()
	headerB := cg.newBlock("loop.cond")
	bodyB := cg.newBlock("loop.body")
	exitB := cg.newBlock("loop.end")
	cg.bu.Br(headerB)

	cg.bu.SetBlock(headerB)
	phis := make([]*ir.Instr, len(syms))
	for i, sym := range syms {
		phi := cg.bu.Phi(cg.env[sym].Type(), sym.Name+".loop")
		ir.AddIncoming(phi, cg.env[sym], preB)
		cg.env[sym] = phi
		phis[i] = phi
	}
	var condV ir.Value = ir.ConstBool(true)
	if cond != nil {
		condV = cg.expr(cond)
	}
	cg.bu.CondBr(condV, bodyB, exitB)
	headerEnv := cg.snapshotEnv()

	cg.bu.SetBlock(bodyB)
	cg.stmt(body)
	if post != nil && !cg.done {
		cg.stmt(post)
	}
	if !cg.done {
		latch := cg.bu.Block()
		cg.bu.Br(headerB)
		for i, sym := range syms {
			ir.AddIncoming(phis[i], cg.env[sym], latch)
		}
	}
	cg.done = false
	cg.bu.SetBlock(exitB)
	cg.env = headerEnv
}

// varyingWhile lowers a varying-condition while to a mask loop: iterate
// until no lane remains active, blending assignments under the live mask.
func (cg *fnGen) varyingWhile(st *lang.WhileStmt) {
	syms := cg.assignedSymbols(st.Body)
	oldMask, oldAllOn := cg.mask, cg.allOn

	preB := cg.bu.Block()
	headerB := cg.newBlock("vwhile.cond")
	bodyB := cg.newBlock("vwhile.body")
	exitB := cg.newBlock("vwhile.end")
	cg.bu.Br(headerB)

	cg.bu.SetBlock(headerB)
	maskPhi := cg.bu.Phi(cg.mg.maskType(), "loopmask")
	ir.AddIncoming(maskPhi, oldMask, preB)
	phis := make([]*ir.Instr, len(syms))
	for i, sym := range syms {
		phi := cg.bu.Phi(cg.env[sym].Type(), sym.Name+".vloop")
		ir.AddIncoming(phi, cg.env[sym], preB)
		cg.env[sym] = phi
		phis[i] = phi
	}
	cg.mask, cg.allOn = maskPhi, false
	condV := cg.expr(st.Cond)
	live := cg.bu.And(maskPhi, condV, "livemask")
	any := cg.anyLaneOn(live)
	cg.bu.CondBr(any, bodyB, exitB)
	headerEnv := cg.snapshotEnv()

	cg.bu.SetBlock(bodyB)
	cg.mask, cg.allOn = live, false
	cg.stmt(st.Body)
	latch := cg.bu.Block()
	cg.bu.Br(headerB)
	ir.AddIncoming(maskPhi, live, latch)
	for i, sym := range syms {
		ir.AddIncoming(phis[i], cg.env[sym], latch)
	}

	cg.bu.SetBlock(exitB)
	cg.env = headerEnv
	cg.mask, cg.allOn = oldMask, oldAllOn
}
