package codegen

import (
	"vulfi/internal/ir"
	"vulfi/internal/lang"
)

// convert adapts v (of checked type from) to checked type to: base-type
// conversion in scalar/vector form, then a uniform→varying broadcast with
// the Figure 9 insertelement+shufflevector pattern when needed.
func (cg *fnGen) convert(v ir.Value, from, to lang.VType, name string) ir.Value {
	if from.Array {
		return v // array values are pointers; sema guarantees base match
	}
	v = cg.convertBase(v, from.Base, to.Base, name)
	if from.Uniform && !to.Uniform {
		v = cg.bu.Broadcast(v, cg.mg.vl, name)
	}
	return v
}

// convertBase converts between base types at v's current shape.
func (cg *fnGen) convertBase(v ir.Value, from, to lang.BaseType, name string) ir.Value {
	if from == to {
		return v
	}
	fs, ts := scalarType(from), scalarType(to)
	tt := ts
	if v.Type().IsVector() {
		tt = ir.Vec(ts, v.Type().Len)
	}
	switch {
	case fs.IsInt() && ts.IsInt():
		if fs.Bits < ts.Bits {
			return cg.bu.Cast(ir.OpSExt, v, tt, name)
		}
		return cg.bu.Cast(ir.OpTrunc, v, tt, name)
	case fs.IsInt() && ts.IsFloat():
		return cg.bu.Cast(ir.OpSIToFP, v, tt, name)
	case fs.IsFloat() && ts.IsInt():
		return cg.bu.Cast(ir.OpFPToSI, v, tt, name)
	case fs.IsFloat() && ts.IsFloat():
		if fs.Bits < ts.Bits {
			return cg.bu.Cast(ir.OpFPExt, v, tt, name)
		}
		return cg.bu.Cast(ir.OpFPTrunc, v, tt, name)
	}
	panic("codegen: unsupported base conversion " + fs.String() + " -> " + ts.String())
}

// maskFor widens the current <Vl x i1> mask to the integer mask vector an
// ISA masked intrinsic expects for elements of the given width (AVX
// convention: lane active iff high bit set; sign-extension produces
// 0 / all-ones lanes). The value is named after Figure 5's %floatmask.
func (cg *fnGen) maskFor(elem *ir.Type) ir.Value {
	var mi *ir.Type
	if elem.ScalarBits() == 64 {
		mi = ir.I64
	} else {
		mi = ir.I32
	}
	return cg.bu.Cast(ir.OpSExt, cg.mask, ir.Vec(mi, cg.mg.vl), "floatmask")
}

// anyLaneOn emits the "any lane active" test: sext mask, movmsk, != 0.
func (cg *fnGen) anyLaneOn(mask ir.Value) ir.Value {
	im := cg.bu.Cast(ir.OpSExt, mask, ir.Vec(ir.I32, cg.mg.vl), "maskint")
	mv := cg.bu.Call(cg.mg.intr.MovMsk(cg.mg.vl), "movmsk", im)
	return cg.bu.ICmp(ir.IntNE, mv, ir.ConstInt(ir.I32, 0), "anylanes")
}

// maskedMerge folds newVal into a varying local's environment slot under
// the current mask: a plain overwrite when the mask is statically all-on,
// otherwise a lane select.
func (cg *fnGen) maskedMerge(old, newVal ir.Value, name string) ir.Value {
	if cg.allOn {
		return newVal
	}
	return cg.bu.Select(cg.mask, newVal, old, name)
}

// assignedSymbols walks a statement and collects symbols (declared outside
// of it) that it assigns; used to place loop-carried phis.
func (cg *fnGen) assignedSymbols(s lang.Stmt) []*lang.Symbol {
	seen := map[*lang.Symbol]bool{}
	var order []*lang.Symbol
	add := func(sym *lang.Symbol) {
		if sym != nil && !seen[sym] {
			seen[sym] = true
			order = append(order, sym)
		}
	}
	var walkStmt func(lang.Stmt)
	walkStmt = func(s lang.Stmt) {
		switch st := s.(type) {
		case *lang.BlockStmt:
			for _, sub := range st.Stmts {
				walkStmt(sub)
			}
		case *lang.AssignStmt:
			if id, ok := st.LHS.(*lang.Ident); ok {
				add(cg.mg.prog.Refs[id])
			}
		case *lang.IncDecStmt:
			if id, ok := st.LHS.(*lang.Ident); ok {
				add(cg.mg.prog.Refs[id])
			}
		case *lang.IfStmt:
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *lang.WhileStmt:
			walkStmt(st.Body)
		case *lang.ForStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			if st.Post != nil {
				walkStmt(st.Post)
			}
			walkStmt(st.Body)
		case *lang.ForeachStmt:
			walkStmt(st.Body)
		}
	}
	walkStmt(s)
	// Keep only symbols visible in the current environment (declared
	// outside the walked statement).
	var out []*lang.Symbol
	for _, sym := range order {
		if _, ok := cg.env[sym]; ok {
			out = append(out, sym)
		}
	}
	return out
}
