package codegen_test

import (
	"os"
	"path/filepath"
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/isa"
)

// TestExampleKernelsCompile keeps the shipped .vspc sample kernels
// building (and instrumentable) on every ISA.
func TestExampleKernelsCompile(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "kernels")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("kernels directory: %v", err)
	}
	var found int
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".vspc" {
			continue
		}
		found++
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range isa.Extended {
			t.Run(e.Name()+"/"+target.Name, func(t *testing.T) {
				res, err := codegen.CompileSource(string(src), target, e.Name())
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				sites := core.EnumerateSites(res.Module, nil)
				if len(sites) == 0 {
					t.Fatal("no fault sites")
				}
				if _, err := core.Instrument(res.Module, sites); err != nil {
					t.Fatalf("instrument: %v", err)
				}
				if err := res.Module.Verify(); err != nil {
					t.Fatalf("invalid after instrumentation: %v", err)
				}
			})
		}
	}
	if found < 3 {
		t.Fatalf("expected at least 3 sample kernels, found %d", found)
	}
}
