package codegen

import (
	"vulfi/internal/ir"
	"vulfi/internal/lang"
)

// foreachStmt lowers foreach (v = start ... end) body to the paper's
// Figure 7 CFG. The first {n - (n % Vl)} iterations run in
// foreach_full_body with all Vl lanes on (unmasked vector operations);
// the remaining n % Vl iterations run once in partial_inner_only under a
// lane mask. nextras and aligned_end are named after the paper so the
// detector-synthesis pass (and readers) can key off them.
func (cg *fnGen) foreachStmt(st *lang.ForeachStmt) {
	indSym := cg.mg.prog.ForeachSyms[st]
	vl := cg.mg.vl
	vlC := ir.ConstInt(ir.I32, int64(vl))

	start := cg.convert(cg.expr(st.Start), cg.mg.prog.Types[st.Start],
		lang.VType{Base: lang.TInt, Uniform: true}, "start")
	end := cg.convert(cg.expr(st.End), cg.mg.prog.Types[st.End],
		lang.VType{Base: lang.TInt, Uniform: true}, "end")

	span := cg.bu.Sub(end, start, "span")
	nextras := cg.bu.SRem(span, vlC, "nextras")
	alignedEnd := cg.bu.Sub(end, nextras, "aligned_end")

	syms := cg.assignedSymbols(st.Body)

	preB := cg.bu.Block()
	lrph := cg.newBlock("foreach_full_body.lr.ph")
	fullB := cg.newBlock("foreach_full_body")
	fullExit := cg.newBlock("foreach_full_body.exit")
	partialOuter := cg.newBlock("partial_inner_all_outer")
	partialInner := cg.newBlock("partial_inner_only")
	reset := cg.newBlock("foreach_reset")

	fullCond := cg.bu.ICmp(ir.IntSLT, start, alignedEnd, "full.cond")
	cg.bu.CondBr(fullCond, lrph, partialOuter)
	preEnv := cg.snapshotEnv()

	cg.bu.SetBlock(lrph)
	cg.bu.Br(fullB)

	// Full body: all lanes on.
	cg.bu.SetBlock(fullB)
	counter := cg.bu.Phi(ir.I32, "counter")
	ir.AddIncoming(counter, start, lrph)
	fullPhis := make([]*ir.Instr, len(syms))
	for i, sym := range syms {
		phi := cg.bu.Phi(cg.env[sym].Type(), sym.Name+".fe")
		ir.AddIncoming(phi, preEnv[sym], lrph)
		cg.env[sym] = phi
		fullPhis[i] = phi
	}
	counterVec := cg.bu.Broadcast(counter, vl, "counter")
	indFull := cg.bu.Add(counterVec, cg.iota(), st.Var)
	cg.env[indSym] = indFull

	oldMask, oldAllOn, oldForeach := cg.mask, cg.allOn, cg.foreach
	cg.mask = ir.ConstSplat(vl, ir.ConstBool(true))
	cg.allOn = true
	cg.foreach = &foreachCtx{sym: indSym, scalarBase: counter}
	cg.stmt(st.Body)

	newCounter := cg.bu.Add(counter, vlC, "new_counter")
	exitCond := cg.bu.ICmp(ir.IntSLT, newCounter, alignedEnd, "exitcond")
	latch := cg.bu.Block()
	cg.bu.CondBr(exitCond, fullB, fullExit)
	ir.AddIncoming(counter, newCounter, latch)
	fullEndEnv := cg.snapshotEnv()
	for i, sym := range syms {
		ir.AddIncoming(fullPhis[i], fullEndEnv[sym], latch)
	}

	// Loop exit: the spot where the §III-A invariant detector block goes.
	cg.bu.SetBlock(fullExit)
	cg.bu.Br(partialOuter)

	cg.mg.foreachs = append(cg.mg.foreachs, &ForeachInfo{
		Func: cg.f, FullBody: fullB, FullExit: fullExit,
		NewCounter: newCounter, AlignedEnd: alignedEnd, VL: vl,
	})

	// Merge point before the partial iterations.
	cg.bu.SetBlock(partialOuter)
	for _, sym := range syms {
		// Loop-carried phi values must come from the *loop header* phi
		// (the value after the final iteration), not the latch-recomputed
		// value: at the exit edge the latch value was computed but the
		// escaping value is the one the body finished with.
		phi := cg.bu.Phi(cg.env[sym].Type(), sym.Name+".po")
		ir.AddIncoming(phi, preEnv[sym], preB)
		ir.AddIncoming(phi, fullEndEnv[sym], fullExit)
		cg.env[sym] = phi
	}
	hasExtras := cg.bu.ICmp(ir.IntNE, nextras, ir.ConstInt(ir.I32, 0), "has_extras")
	cg.bu.CondBr(hasExtras, partialInner, reset)
	outerEnv := cg.snapshotEnv()

	// Partial body: lanes [aligned_end, end) on.
	cg.bu.SetBlock(partialInner)
	aeVec := cg.bu.Broadcast(alignedEnd, vl, "aligned_end")
	indPartial := cg.bu.Add(aeVec, cg.iota(), st.Var+".partial")
	endVec := cg.bu.Broadcast(end, vl, "end")
	partialMask := cg.bu.ICmp(ir.IntSLT, indPartial, endVec, "partialmask")
	cg.env[indSym] = indPartial
	cg.mask = partialMask
	cg.allOn = false
	cg.foreach = &foreachCtx{sym: indSym, scalarBase: alignedEnd}
	cg.stmt(st.Body)
	partialEnd := cg.bu.Block()
	cg.bu.Br(reset)
	partialEnv := cg.snapshotEnv()

	// Reset: rejoin uniform control flow.
	cg.bu.SetBlock(reset)
	for _, sym := range syms {
		phi := cg.bu.Phi(outerEnv[sym].Type(), sym.Name+".reset")
		ir.AddIncoming(phi, outerEnv[sym], partialOuter)
		ir.AddIncoming(phi, partialEnv[sym], partialEnd)
		cg.env[sym] = phi
	}
	delete(cg.env, indSym)
	cg.mask, cg.allOn, cg.foreach = oldMask, oldAllOn, oldForeach
}
