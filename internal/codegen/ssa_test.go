package codegen_test

import (
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/detect"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// TestSSAValidityAllBenchmarks compiles every benchmark for every ISA
// (including the AVX512 extension), then checks the deep SSA dominance
// property — before and after detector insertion and full VULFI
// instrumentation. This is the whole-pipeline structural safety net.
func TestSSAValidityAllBenchmarks(t *testing.T) {
	for _, b := range benchmarks.All() {
		for _, target := range isa.Extended {
			t.Run(b.Name+"/"+target.Name, func(t *testing.T) {
				res, err := codegen.CompileSource(b.Source, target, b.Name)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				if err := passes.VerifySSAModule(res.Module); err != nil {
					t.Fatalf("SSA dominance violated after codegen:\n%v", err)
				}
				pm := &passes.Manager{Verify: true}
				pm.Add(&detect.ForeachInvariantPass{})
				pm.Add(&detect.UniformBroadcastPass{})
				pm.Add(&core.InstrumentPass{Category: passes.Control})
				if err := pm.Run(res.Module); err != nil {
					t.Fatalf("pass pipeline: %v", err)
				}
				if err := passes.VerifySSAModule(res.Module); err != nil {
					t.Fatalf("SSA dominance violated after instrumentation:\n%v", err)
				}
			})
		}
	}
}
