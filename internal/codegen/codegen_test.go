package codegen_test

import (
	"strings"
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
)

const vcopySrc = `
export void vcopy(uniform int a1[], uniform int a2[], uniform int n) {
	foreach (i = 0 ... n) {
		a2[i] = a1[i];
	}
	return;
}
`

func compileT(t *testing.T, src string, target *isa.ISA) *codegen.Result {
	t.Helper()
	res, err := codegen.CompileSource(src, target, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

func instT(t *testing.T, res *codegen.Result) *exec.Instance {
	t.Helper()
	x, err := exec.NewInstance(res, interp.Options{})
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	return x
}

func TestVCopyBothISAs(t *testing.T) {
	for _, target := range isa.All {
		t.Run(target.Name, func(t *testing.T) {
			// n = 13 exercises both full body (8) and partial (5) on AVX.
			res := compileT(t, vcopySrc, target)
			x := instT(t, res)
			src := make([]int32, 13)
			for i := range src {
				src[i] = int32(i * 7)
			}
			a1, err := x.AllocI32(src)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := x.AllocI32(make([]int32, 13))
			if err != nil {
				t.Fatal(err)
			}
			if _, tr := x.CallExport("vcopy", exec.PtrArgI32(a1),
				exec.PtrArgI32(a2), exec.I32Arg(13)); tr != nil {
				t.Fatalf("run: %v", tr)
			}
			got, err := x.ReadI32(a2, 13)
			if err != nil {
				t.Fatal(err)
			}
			for i := range src {
				if got[i] != src[i] {
					t.Fatalf("a2[%d] = %d, want %d", i, got[i], src[i])
				}
			}
		})
	}
}

func TestForeachCFGShape(t *testing.T) {
	res := compileT(t, vcopySrc, isa.AVX)
	f := res.Module.Func("vcopy")
	wantBlocks := []string{"allocas", "foreach_full_body.lr.ph",
		"foreach_full_body", "partial_inner_all_outer", "partial_inner_only",
		"foreach_reset"}
	for _, nm := range wantBlocks {
		if f.BlockByName(nm) == nil {
			t.Errorf("missing block %q in lowered foreach\n%s", nm, f)
		}
	}
	text := f.String()
	for _, frag := range []string{"nextras = srem i32", "aligned_end = sub i32",
		"new_counter = add i32"} {
		if !strings.Contains(text, frag) {
			t.Errorf("lowered IR missing %q:\n%s", frag, text)
		}
	}
	if len(res.Foreachs) != 1 {
		t.Fatalf("expected 1 ForeachInfo, got %d", len(res.Foreachs))
	}
	fi := res.Foreachs[0]
	if fi.VL != 8 {
		t.Errorf("AVX VL = %d, want 8", fi.VL)
	}
	if fi.NewCounter.Nam != "new_counter" {
		t.Errorf("NewCounter named %q", fi.NewCounter.Nam)
	}
}

func TestMaskedIntrinsicsInPartialBody(t *testing.T) {
	res := compileT(t, vcopySrc, isa.AVX)
	text := res.Module.Func("vcopy").String()
	if !strings.Contains(text, "llvm.x86.avx2.maskload.d.256") {
		t.Errorf("partial body should use the AVX masked load intrinsic:\n%s", text)
	}
	if !strings.Contains(text, "llvm.x86.avx2.maskstore.d.256") {
		t.Errorf("partial body should use the AVX masked store intrinsic:\n%s", text)
	}
}

const dotSrc = `
export uniform float dot(uniform float a[], uniform float b[], uniform int n) {
	varying float partial = 0.0;
	foreach (i = 0 ... n) {
		partial += a[i] * b[i];
	}
	uniform float total = reduce_add(partial);
	return total;
}
`

func TestDotProduct(t *testing.T) {
	for _, target := range isa.All {
		t.Run(target.Name, func(t *testing.T) {
			res := compileT(t, dotSrc, target)
			x := instT(t, res)
			n := 11
			av := make([]float32, n)
			bv := make([]float32, n)
			var want float32
			for i := range av {
				av[i] = float32(i) + 0.5
				bv[i] = 2
				want += av[i] * bv[i]
			}
			a, _ := x.AllocF32(av)
			b, _ := x.AllocF32(bv)
			got, tr := x.CallExport("dot", exec.PtrArgF32(a), exec.PtrArgF32(b),
				exec.I32Arg(int64(n)))
			if tr != nil {
				t.Fatalf("run: %v", tr)
			}
			if f := float32(got.Float()); f != want {
				t.Fatalf("dot = %v, want %v", f, want)
			}
		})
	}
}

const varyingIfSrc = `
export void relu(uniform float a[], uniform float b[], uniform int n) {
	foreach (i = 0 ... n) {
		varying float v = a[i];
		if (v < 0.0) {
			v = 0.0;
		}
		b[i] = v;
	}
}
`

func TestVaryingIfPredication(t *testing.T) {
	res := compileT(t, varyingIfSrc, isa.SSE)
	x := instT(t, res)
	in := []float32{-1, 2, -3, 4, -5, 6, -7}
	a, _ := x.AllocF32(in)
	b, _ := x.AllocF32(make([]float32, len(in)))
	if _, tr := x.CallExport("relu", exec.PtrArgF32(a), exec.PtrArgF32(b),
		exec.I32Arg(int64(len(in)))); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, _ := x.ReadF32(b, len(in))
	for i, v := range in {
		want := v
		if want < 0 {
			want = 0
		}
		if got[i] != want {
			t.Fatalf("b[%d] = %v, want %v", i, got[i], want)
		}
	}
}

const varyingWhileSrc = `
export void collatzSteps(uniform int a[], uniform int out[], uniform int n) {
	foreach (i = 0 ... n) {
		varying int v = a[i];
		varying int steps = 0;
		while (v > 1) {
			if (v % 2 == 0) {
				v = v / 2;
			} else {
				v = 3 * v + 1;
			}
			steps = steps + 1;
		}
		out[i] = steps;
	}
}
`

func collatzRef(v int32) int32 {
	var s int32
	for v > 1 {
		if v%2 == 0 {
			v /= 2
		} else {
			v = 3*v + 1
		}
		s++
	}
	return s
}

func TestVaryingWhileMaskLoop(t *testing.T) {
	for _, target := range isa.All {
		t.Run(target.Name, func(t *testing.T) {
			res := compileT(t, varyingWhileSrc, target)
			x := instT(t, res)
			in := []int32{1, 2, 3, 4, 5, 6, 7, 27, 9, 10, 11}
			a, _ := x.AllocI32(in)
			out, _ := x.AllocI32(make([]int32, len(in)))
			if _, tr := x.CallExport("collatzSteps", exec.PtrArgI32(a),
				exec.PtrArgI32(out), exec.I32Arg(int64(len(in)))); tr != nil {
				t.Fatalf("run: %v", tr)
			}
			got, _ := x.ReadI32(out, len(in))
			for i, v := range in {
				if got[i] != collatzRef(v) {
					t.Fatalf("steps[%d] = %d, want %d", i, got[i], collatzRef(v))
				}
			}
		})
	}
}

const gatherSrc = `
export void permute(uniform int idx[], uniform int src[], uniform int dst[],
		uniform int n) {
	foreach (i = 0 ... n) {
		dst[i] = src[idx[i]];
	}
}
`

func TestGather(t *testing.T) {
	res := compileT(t, gatherSrc, isa.AVX)
	x := instT(t, res)
	n := 10
	idx := make([]int32, n)
	src := make([]int32, n)
	for i := 0; i < n; i++ {
		idx[i] = int32(n - 1 - i)
		src[i] = int32(i * 100)
	}
	ai, _ := x.AllocI32(idx)
	as, _ := x.AllocI32(src)
	ad, _ := x.AllocI32(make([]int32, n))
	if _, tr := x.CallExport("permute", exec.PtrArgI32(ai), exec.PtrArgI32(as),
		exec.PtrArgI32(ad), exec.I32Arg(int64(n))); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, _ := x.ReadI32(ad, n)
	for i := 0; i < n; i++ {
		if got[i] != src[idx[i]] {
			t.Fatalf("dst[%d] = %d, want %d", i, got[i], src[idx[i]])
		}
	}
	text := res.Module.Func("permute").String()
	if !strings.Contains(text, ".gather.") {
		t.Errorf("expected gather intrinsic in lowered IR:\n%s", text)
	}
}

const broadcastSrc = `
export void scale(uniform float a[], uniform int n, uniform float s) {
	foreach (i = 0 ... n) {
		a[i] = a[i] * s;
	}
}
`

func TestUniformBroadcastPattern(t *testing.T) {
	res := compileT(t, broadcastSrc, isa.AVX)
	text := res.Module.Func("scale").String()
	// Figure 9: insertelement into undef then shufflevector zeroinit mask.
	if !strings.Contains(text, "_broadcast_init = insertelement") ||
		!strings.Contains(text, "shufflevector") {
		t.Errorf("missing Figure 9 broadcast pattern:\n%s", text)
	}

	x := instT(t, res)
	in := []float32{1, 2, 3, 4, 5}
	a, _ := x.AllocF32(in)
	if _, tr := x.CallExport("scale", exec.PtrArgF32(a), exec.I32Arg(5),
		exec.F32Arg(2.5)); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, _ := x.ReadF32(a, 5)
	for i, v := range in {
		if got[i] != v*2.5 {
			t.Fatalf("a[%d] = %v, want %v", i, got[i], v*2.5)
		}
	}
}

const uniformLoopSrc = `
export uniform int sumSquares(uniform int n) {
	uniform int s = 0;
	for (uniform int i = 0; i < n; i++) {
		s += i * i;
	}
	return s;
}
`

func TestUniformForLoop(t *testing.T) {
	res := compileT(t, uniformLoopSrc, isa.SSE)
	x := instT(t, res)
	got, tr := x.CallExport("sumSquares", exec.I32Arg(10))
	if tr != nil {
		t.Fatalf("run: %v", tr)
	}
	want := int64(0)
	for i := int64(0); i < 10; i++ {
		want += i * i
	}
	if got.Int() != want {
		t.Fatalf("sumSquares = %d, want %d", got.Int(), want)
	}
}

const callSrc = `
float helper(varying float x, varying float y) {
	return x * y + 1.0;
}

export void applyHelper(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		a[i] = helper(a[i], a[i]);
	}
}
`

func TestUserFunctionCallWithMask(t *testing.T) {
	res := compileT(t, callSrc, isa.AVX)
	x := instT(t, res)
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9} // 9 = full body + partial lane
	a, _ := x.AllocF32(in)
	if _, tr := x.CallExport("applyHelper", exec.PtrArgF32(a),
		exec.I32Arg(int64(len(in)))); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, _ := x.ReadF32(a, len(in))
	for i, v := range in {
		want := v*v + 1
		if got[i] != want {
			t.Fatalf("a[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestStencilOffsets(t *testing.T) {
	src := `
export void blur(uniform float a[], uniform float b[], uniform int n) {
	foreach (i = 1 ... n - 1) {
		b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3.0;
	}
}
`
	res := compileT(t, src, isa.AVX)
	x := instT(t, res)
	n := 19
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i * i)
	}
	a, _ := x.AllocF32(in)
	b, _ := x.AllocF32(make([]float32, n))
	if _, tr := x.CallExport("blur", exec.PtrArgF32(a), exec.PtrArgF32(b),
		exec.I32Arg(int64(n))); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, _ := x.ReadF32(b, n)
	for i := 1; i < n-1; i++ {
		want := (in[i-1] + in[i] + in[i+1]) / 3
		if got[i] != want {
			t.Fatalf("b[%d] = %v, want %v", i, got[i], want)
		}
	}
}
