package codegen_test

import (
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/codegen"
	"vulfi/internal/isa"
	"vulfi/internal/lang"
)

// TestFormatRoundtripCompilesIdentically is the strongest formatter
// property: formatting a benchmark source and compiling the result must
// produce bit-identical IR (same structure, same value names), for every
// benchmark in the suite.
func TestFormatRoundtripCompilesIdentically(t *testing.T) {
	for _, b := range benchmarks.All() {
		t.Run(b.Name, func(t *testing.T) {
			orig, err := codegen.CompileSource(b.Source, isa.AVX, b.Name)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := lang.Parse(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			formatted := lang.Format(parsed)
			re, err := codegen.CompileSource(formatted, isa.AVX, b.Name)
			if err != nil {
				t.Fatalf("formatted source does not compile: %v\n%s", err, formatted)
			}
			if orig.Module.String() != re.Module.String() {
				t.Errorf("formatted source compiles differently for %s", b.Name)
			}
		})
	}
}
