// Package codegen lowers checked VSPC programs to vector IR, reproducing
// the structure of ISPC's code generator that the paper's detectors are
// synthesized from:
//
//   - foreach loops lower to the Figure 7 CFG: an "allocas" entry block
//     computing nextras = (end-start) % Vl and aligned_end = end - nextras,
//     a foreach_full_body loop stepping new_counter by Vl with unmasked
//     vector memory operations, and a partial_inner_only block handling
//     the n % Vl remainder iterations under a lane mask via masked
//     intrinsics (Figure 5);
//   - uniform values broadcast to vector registers with the Figure 9
//     insertelement + shufflevector pattern;
//   - varying if/while lower to execution-mask predication (select +
//     masked stores) and mask loops, as SPMD-on-SIMD compilers do.
//
// Every function takes a trailing <Vl x i1> execution-mask parameter;
// export functions (application entry points) assume an all-on entry mask
// and use unmasked vector operations where the mask is statically all-on.
package codegen

import (
	"fmt"
	"time"

	"vulfi/internal/ir"
	"vulfi/internal/isa"
	"vulfi/internal/lang"
	"vulfi/internal/passes"
	"vulfi/internal/telemetry"
)

// ForeachInfo records the IR artifacts of one lowered foreach loop. The
// detect package rediscovers these structurally; tests cross-check
// against this metadata.
type ForeachInfo struct {
	Func       *ir.Func
	FullBody   *ir.Block
	FullExit   *ir.Block // single-pred exit block of the full-body loop
	NewCounter *ir.Instr
	AlignedEnd ir.Value
	VL         int
}

// Result is a compiled module plus its metadata.
type Result struct {
	Module   *ir.Module
	ISA      *isa.ISA
	VL       int
	Exports  []string
	Foreachs []*ForeachInfo
}

// MaskParamName is the name of the implicit trailing execution-mask
// parameter added to every VSPC function.
const MaskParamName = "__mask"

// Compile lowers a checked program for the given ISA.
func Compile(prog *lang.Program, target *isa.ISA, moduleName string) (*Result, error) {
	defer telemetry.Default().Histogram("codegen.compile").Since(time.Now())
	mg := &moduleGen{
		prog: prog,
		isa:  target,
		vl:   target.Lanes(ir.I32), // gang size: 32-bit lanes per register
		mod:  ir.NewModule(moduleName),
		fns:  map[string]*ir.Func{},
	}
	mg.intr = &isa.Intrinsics{ISA: target, Mod: mg.mod}
	res := &Result{Module: mg.mod, ISA: target, VL: mg.vl}

	// Declare all function signatures first (forward calls).
	for _, fd := range prog.File.Funcs {
		fi := prog.Funcs[fd.Name]
		f := mg.declareFunc(fi)
		mg.mod.AddFunc(f)
		mg.fns[fd.Name] = f
		if fd.Export {
			res.Exports = append(res.Exports, fd.Name)
		}
	}
	for _, fd := range prog.File.Funcs {
		fi := prog.Funcs[fd.Name]
		if err := mg.genFunc(fi); err != nil {
			return nil, err
		}
	}
	res.Foreachs = mg.foreachs
	// Match the paper's post-O3 IR: fold constant arithmetic (so e.g.
	// `span = sub %n, 0` becomes `%n` and the entry block computes the
	// Figure 7 `%nextras = srem i32 %n, 8` verbatim), then remove dead
	// values — a dead value would absorb injections benignly and bias
	// every fault-injection rate.
	fold := &passes.ConstFold{}
	if err := fold.Run(mg.mod); err != nil {
		return nil, err
	}
	dce := &passes.DeadCodeElim{}
	if err := dce.Run(mg.mod); err != nil {
		return nil, err
	}
	if err := mg.mod.Verify(); err != nil {
		return nil, fmt.Errorf("codegen produced invalid IR: %w", err)
	}
	return res, nil
}

// CompileSource parses, checks and compiles src.
func CompileSource(src string, target *isa.ISA, moduleName string) (*Result, error) {
	prog, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, target, moduleName)
}

type moduleGen struct {
	prog     *lang.Program
	isa      *isa.ISA
	vl       int
	mod      *ir.Module
	intr     *isa.Intrinsics
	fns      map[string]*ir.Func
	foreachs []*ForeachInfo
}

// scalarType maps a VSPC base type to its scalar IR type.
func scalarType(b lang.BaseType) *ir.Type {
	switch b {
	case lang.TBool:
		return ir.I1
	case lang.TInt:
		return ir.I32
	case lang.TInt64:
		return ir.I64
	case lang.TFloat:
		return ir.F32
	case lang.TDouble:
		return ir.F64
	case lang.TVoid:
		return ir.Void
	}
	panic("codegen: unmapped base type")
}

// irType maps a VSPC type to its IR type at gang size vl.
func (mg *moduleGen) irType(t lang.VType) *ir.Type {
	if t.Array {
		return ir.Ptr(scalarType(t.Base))
	}
	st := scalarType(t.Base)
	if t.Uniform || st.IsVoid() {
		return st
	}
	return ir.Vec(st, mg.vl)
}

// maskType is the execution-mask IR type (<Vl x i1>).
func (mg *moduleGen) maskType() *ir.Type { return ir.Vec(ir.I1, mg.vl) }

func (mg *moduleGen) declareFunc(fi *lang.FuncInfo) *ir.Func {
	var ptys []*ir.Type
	var pnames []string
	for _, p := range fi.Params {
		ptys = append(ptys, mg.irType(p.Type))
		pnames = append(pnames, p.Name)
	}
	ptys = append(ptys, mg.maskType())
	pnames = append(pnames, MaskParamName)
	return ir.NewFunc(fi.Name, mg.irType(fi.Ret), ptys, pnames)
}

// genFunc generates the body of one function.
func (mg *moduleGen) genFunc(fi *lang.FuncInfo) error {
	f := mg.fns[fi.Name]
	cg := &fnGen{
		mg:  mg,
		fi:  fi,
		f:   f,
		env: map[*lang.Symbol]ir.Value{},
	}
	// Entry block named after the paper's Figure 7.
	entry := f.NewBlock("allocas")
	cg.bu = ir.NewBuilder(entry)

	for i, p := range fi.Params {
		cg.env[p] = f.Params[i]
	}
	if fi.Decl.Export {
		// Application entry: all-on mask, statically known.
		cg.mask = ir.ConstSplat(mg.vl, ir.ConstBool(true))
		cg.allOn = true
	} else {
		cg.mask = f.Params[len(f.Params)-1]
		cg.allOn = false
	}

	cg.stmt(fi.Decl.Body)

	// Default return on fallthrough.
	if !cg.done {
		rt := f.RetType()
		if rt.IsVoid() {
			cg.bu.Ret(nil)
		} else {
			cg.bu.Ret(ir.ConstZero(rt))
		}
	}
	return nil
}

// fnGen is the per-function code generator state.
type fnGen struct {
	mg  *moduleGen
	fi  *lang.FuncInfo
	f   *ir.Func
	bu  *ir.Builder
	env map[*lang.Symbol]ir.Value

	// mask is the current execution mask (<Vl x i1>); allOn records that
	// it is statically all-true (export entry + no varying control).
	mask  ir.Value
	allOn bool

	// done marks the current path as terminated (after return).
	done bool

	// foreach is the innermost foreach lowering context (nil outside).
	foreach *foreachCtx

	blockSeq map[string]int
}

type foreachCtx struct {
	sym *lang.Symbol
	// scalarBase is the scalar counter for the current body instance:
	// the loop counter in the full body, aligned_end in the partial body.
	scalarBase ir.Value
}

// newBlock creates a block named base; repeats of the same base get a
// numeric suffix, so the first foreach in a function carries exactly the
// paper's Figure 7 block names.
func (cg *fnGen) newBlock(base string) *ir.Block {
	if cg.blockSeq == nil {
		cg.blockSeq = map[string]int{}
	}
	cg.blockSeq[base]++
	if n := cg.blockSeq[base]; n > 1 {
		return cg.f.NewBlock(fmt.Sprintf("%s.%d", base, n))
	}
	return cg.f.NewBlock(base)
}

// iota returns the constant <0, 1, ..., Vl-1>.
func (cg *fnGen) iota() *ir.Const {
	lanes := make([]uint64, cg.mg.vl)
	for i := range lanes {
		lanes[i] = uint64(i)
	}
	return ir.ConstVec(ir.Vec(ir.I32, cg.mg.vl), lanes)
}

// snapshotEnv copies the current symbol environment.
func (cg *fnGen) snapshotEnv() map[*lang.Symbol]ir.Value {
	out := make(map[*lang.Symbol]ir.Value, len(cg.env))
	for k, v := range cg.env {
		out[k] = v
	}
	return out
}
