package codegen

import (
	"vulfi/internal/ir"
	"vulfi/internal/lang"
)

var math1Names = map[string]string{
	"sqrt": "sqrt", "rsqrt": "rsqrt", "rcp": "rcp", "sin": "sin",
	"cos": "cos", "tan": "tan", "exp": "exp", "log": "log",
	"floor": "floor", "ceil": "ceil", "round": "round",
}

var math2Names = map[string]string{
	"pow": "pow", "atan2": "atan2",
}

// builtinCall lowers the VSPC builtins. Math functions become llvm.*
// intrinsic calls; min/max/abs/clamp become compare+select sequences
// (giving the fault injector realistic data/control sites); reductions
// become extractelement chains.
func (cg *fnGen) builtinCall(x *lang.CallExpr) ir.Value {
	resT := cg.mg.prog.Types[x]
	conv := func(i int, to lang.VType) ir.Value {
		return cg.convert(cg.expr(x.Args[i]), cg.mg.prog.Types[x.Args[i]], to, "")
	}

	if op, ok := math1Names[x.Name]; ok {
		v := conv(0, resT)
		fn := cg.mg.intr.MathUnary(op, cg.mg.irType(resT))
		return cg.bu.Call(fn, x.Name, v)
	}
	if op, ok := math2Names[x.Name]; ok {
		a := conv(0, resT)
		b := conv(1, resT)
		fn := cg.mg.intr.MathBinary(op, cg.mg.irType(resT))
		return cg.bu.Call(fn, x.Name, a, b)
	}

	switch x.Name {
	case "min", "max":
		a := conv(0, resT)
		b := conv(1, resT)
		var cmp *ir.Instr
		if resT.IsFloatBase() {
			p := ir.FloatOLT
			if x.Name == "max" {
				p = ir.FloatOGT
			}
			cmp = cg.bu.FCmp(p, a, b, "")
		} else {
			p := ir.IntSLT
			if x.Name == "max" {
				p = ir.IntSGT
			}
			cmp = cg.bu.ICmp(p, a, b, "")
		}
		return cg.bu.Select(cmp, a, b, x.Name)
	case "clamp":
		v := conv(0, resT)
		lo := conv(1, resT)
		hi := conv(2, resT)
		var cl, ch *ir.Instr
		if resT.IsFloatBase() {
			cl = cg.bu.FCmp(ir.FloatOLT, v, lo, "")
			v2 := cg.bu.Select(cl, lo, v, "")
			ch = cg.bu.FCmp(ir.FloatOGT, v2, hi, "")
			return cg.bu.Select(ch, hi, v2, "clamp")
		}
		cl = cg.bu.ICmp(ir.IntSLT, v, lo, "")
		v2 := cg.bu.Select(cl, lo, v, "")
		ch = cg.bu.ICmp(ir.IntSGT, v2, hi, "")
		return cg.bu.Select(ch, hi, v2, "clamp")
	case "abs":
		v := conv(0, resT)
		if resT.IsFloatBase() {
			fn := cg.mg.intr.MathUnary("fabs", cg.mg.irType(resT))
			return cg.bu.Call(fn, "abs", v)
		}
		st := scalarType(resT.Base)
		zero := ir.Value(ir.ConstInt(st, 0))
		if !resT.Uniform {
			zero = ir.ConstSplat(cg.mg.vl, zero.(*ir.Const))
		}
		neg := cg.bu.ICmp(ir.IntSLT, v, zero, "")
		nv := cg.bu.Sub(zero, v, "")
		return cg.bu.Select(neg, nv, v, "abs")
	case "select":
		condT := lang.VType{Base: lang.TBool, Uniform: resT.Uniform}
		c := conv(0, condT)
		a := conv(1, resT)
		b := conv(2, resT)
		return cg.bu.Select(c, a, b, "sel")
	case "reduce_add", "reduce_min", "reduce_max":
		return cg.reduce(x)
	case "programIndex":
		return cg.iota()
	case "programCount":
		return ir.ConstInt(ir.I32, int64(cg.mg.vl))
	case "print":
		v := cg.expr(x.Args[0])
		at := cg.mg.prog.Types[x.Args[0]]
		// Print bools as i32 0/1.
		if at.Base == lang.TBool {
			v = cg.convertBool(v, at)
			at = lang.VType{Base: lang.TInt, Uniform: at.Uniform}
		}
		fn := cg.mg.outDecl(v.Type())
		cg.bu.Call(fn, "", v)
		return nil
	}
	panic("codegen: unhandled builtin " + x.Name)
}

// convertBool widens an i1 value to i32 for printing.
func (cg *fnGen) convertBool(v ir.Value, t lang.VType) ir.Value {
	to := ir.I32
	var tt *ir.Type = to
	if !t.Uniform {
		tt = ir.Vec(to, cg.mg.vl)
	}
	return cg.bu.Cast(ir.OpZExt, v, tt, "")
}

// reduce lowers reduce_add/min/max over a varying value to an
// extractelement chain.
func (cg *fnGen) reduce(x *lang.CallExpr) ir.Value {
	resT := cg.mg.prog.Types[x] // uniform base
	argT := lang.VType{Base: resT.Base, Uniform: false}
	v := cg.convert(cg.expr(x.Args[0]), cg.mg.prog.Types[x.Args[0]], argT, "")
	isFloat := resT.IsFloatBase()

	acc := ir.Value(cg.bu.ExtractElement(v, ir.ConstInt(ir.I32, 0), "red0"))
	for i := 1; i < cg.mg.vl; i++ {
		e := cg.bu.ExtractElement(v, ir.ConstInt(ir.I32, int64(i)), "")
		switch x.Name {
		case "reduce_add":
			if isFloat {
				acc = cg.bu.FAdd(acc, e, "")
			} else {
				acc = cg.bu.Add(acc, e, "")
			}
		case "reduce_min":
			var c *ir.Instr
			if isFloat {
				c = cg.bu.FCmp(ir.FloatOLT, acc, e, "")
			} else {
				c = cg.bu.ICmp(ir.IntSLT, acc, e, "")
			}
			acc = cg.bu.Select(c, acc, e, "")
		case "reduce_max":
			var c *ir.Instr
			if isFloat {
				c = cg.bu.FCmp(ir.FloatOGT, acc, e, "")
			} else {
				c = cg.bu.ICmp(ir.IntSGT, acc, e, "")
			}
			acc = cg.bu.Select(c, acc, e, "")
		}
	}
	return acc
}

// outDecl declares (once) the typed output runtime function for ty.
func (mg *moduleGen) outDecl(ty *ir.Type) *ir.Func {
	name := "vulfi.out." + typeSuffix(ty)
	if f := mg.mod.Func(name); f != nil {
		return f
	}
	f := ir.NewDecl(name, ir.Void, ty)
	mg.mod.AddFunc(f)
	return f
}

func typeSuffix(ty *ir.Type) string {
	s := ty.Scalar()
	var base string
	switch s {
	case ir.F32:
		base = "f32"
	case ir.F64:
		base = "f64"
	case ir.I32:
		base = "i32"
	case ir.I64:
		base = "i64"
	case ir.I1:
		base = "i1"
	default:
		base = "x"
	}
	if ty.IsVector() {
		return "v" + itoa(ty.Len) + base
	}
	return base
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
