; module vcopy
define void @vcopy(i32* %a1, i32* %a2, i32 %n, <8 x i1> %__mask) {
allocas:
  %nextras = srem i32 %n, 8
  %aligned_end = sub i32 %n, %nextras
  %full.cond = icmp slt i32 0, %aligned_end
  br i1 %full.cond, label %foreach_full_body.lr.ph, label %partial_inner_all_outer

foreach_full_body.lr.ph:
  br label %foreach_full_body

foreach_full_body:
  %counter = phi i32 [ 0, %foreach_full_body.lr.ph ], [ %new_counter, %foreach_full_body ]
  %a1_ld_addr = getelementptr i32* %a1, i32 %counter
  %t1 = bitcast i32* %a1_ld_addr to <8 x i32>*
  %t2 = load <8 x i32>* %t1
  %a2_str_addr = getelementptr i32* %a2, i32 %counter
  %t3 = bitcast i32* %a2_str_addr to <8 x i32>*
  store <8 x i32> %t2, <8 x i32>* %t3
  %new_counter = add i32 %counter, 8
  %exitcond = icmp slt i32 %new_counter, %aligned_end
  br i1 %exitcond, label %foreach_full_body, label %foreach_fullbody_check_invariants

foreach_fullbody_check_invariants:
  call void @checkInvariantsForeachFullBody(i32 %new_counter, i32 %aligned_end, i32 0, i32 8)
  br label %partial_inner_all_outer

partial_inner_all_outer:
  %has_extras = icmp ne i32 %nextras, 0
  br i1 %has_extras, label %partial_inner_only, label %foreach_reset

partial_inner_only:
  %aligned_end_broadcast_init = insertelement <8 x i32> undef, i32 %aligned_end, i32 0
  %aligned_end_broadcast = shufflevector <8 x i32> %aligned_end_broadcast_init, <8 x i32> undef, <8 x i32> <i32 0, i32 0, i32 0, i32 0, i32 0, i32 0, i32 0, i32 0>
  %i.partial = add <8 x i32> %aligned_end_broadcast, <i32 0, i32 1, i32 2, i32 3, i32 4, i32 5, i32 6, i32 7>
  %end_broadcast_init = insertelement <8 x i32> undef, i32 %n, i32 0
  %end_broadcast = shufflevector <8 x i32> %end_broadcast_init, <8 x i32> undef, <8 x i32> <i32 0, i32 0, i32 0, i32 0, i32 0, i32 0, i32 0, i32 0>
  %partialmask = icmp slt <8 x i32> %i.partial, %end_broadcast
  %a1_ld_addr.2 = getelementptr i32* %a1, i32 %aligned_end
  %floatmask = sext <8 x i1> %partialmask to <8 x i32>
  %t4 = call <8 x i32> @llvm.x86.avx2.maskload.d.256(i32* %a1_ld_addr.2, <8 x i32> %floatmask)
  %a2_str_addr.2 = getelementptr i32* %a2, i32 %aligned_end
  %floatmask.2 = sext <8 x i1> %partialmask to <8 x i32>
  call void @llvm.x86.avx2.maskstore.d.256(i32* %a2_str_addr.2, <8 x i32> %floatmask.2, <8 x i32> %t4)
  br label %foreach_reset

foreach_reset:
  ret void
}

declare <8 x i32> @llvm.x86.avx2.maskload.d.256(i32* %arg0, <8 x i32> %arg1)

declare void @llvm.x86.avx2.maskstore.d.256(i32* %arg0, <8 x i32> %arg1, <8 x i32> %arg2)

declare void @checkInvariantsForeachFullBody(i32 %arg0, i32 %arg1, i32 %arg2, i32 %arg3)

