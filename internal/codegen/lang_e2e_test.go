package codegen_test

import (
	"math"
	"strings"
	"testing"

	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
)

type interp32 = interp.Value

// runF32Kernel compiles src, fills one input array, runs entry and
// returns the transformed array.
func runF32Kernel(t *testing.T, src, entry string, in []float32,
	extra ...interp32) []float32 {
	t.Helper()
	res := compileT(t, src, isa.AVX)
	x := instT(t, res)
	a, err := x.AllocF32(in)
	if err != nil {
		t.Fatal(err)
	}
	args := []interp32{exec.PtrArgF32(a), exec.I32Arg(int64(len(in)))}
	args = append(args, extra...)
	if _, tr := x.CallExport(entry, args...); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	out, err := x.ReadF32(a, len(in))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBuiltinsElementwise(t *testing.T) {
	src := `
export void mix(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		varying float v = a[i];
		varying float lo = min(v, 0.5);
		varying float hi = max(v, -0.5);
		varying float cl = clamp(v, -1.0, 1.0);
		varying float ab = abs(v);
		varying float se = select(v > 0.0, 1.0, -1.0);
		a[i] = lo + hi + cl + ab + se;
	}
}
`
	in := []float32{-2, -0.25, 0.25, 2, 0.75, -0.75, 3, -3, 0.1}
	got := runF32Kernel(t, src, "mix", in)
	for i, v := range in {
		lo := float32(math.Min(float64(v), 0.5))
		hi := float32(math.Max(float64(v), -0.5))
		cl := float32(math.Max(-1, math.Min(1, float64(v))))
		ab := float32(math.Abs(float64(v)))
		se := float32(-1)
		if v > 0 {
			se = 1
		}
		want := lo + hi + cl + ab + se
		if got[i] != want {
			t.Fatalf("a[%d] = %v, want %v (v=%v)", i, got[i], want, v)
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	src := `
export void m(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		varying float v = a[i];
		a[i] = pow(v, 2.0) + atan2(v, 1.0) + floor(v) + ceil(v);
	}
}
`
	in := []float32{0.5, 1.5, 2.25}
	got := runF32Kernel(t, src, "m", in)
	for i, v := range in {
		wd := math.Pow(float64(float32(v)), 2) // computed per-lane in f32 steps
		want := float32(wd) + float32(math.Atan2(float64(v), 1)) +
			float32(math.Floor(float64(v))) + float32(math.Ceil(float64(v)))
		if math.Abs(float64(got[i]-want)) > 1e-5 {
			t.Fatalf("a[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestReduceMinMax(t *testing.T) {
	src := `
export void reds(uniform float a[], uniform float out[], uniform int n) {
	varying float mn = 1000000.0;
	varying float mx = -1000000.0;
	varying float sum = 0.0;
	foreach (i = 0 ... n) {
		varying float v = a[i];
		mn = min(mn, v);
		mx = max(mx, v);
		sum += v;
	}
	out[0] = reduce_min(mn);
	out[1] = reduce_max(mx);
	out[2] = reduce_add(sum);
}
`
	res := compileT(t, src, isa.AVX)
	x := instT(t, res)
	in := []float32{3, -7, 12, 0.5, 9, -2, 4, 4, 11, -1, 6}
	a, _ := x.AllocF32(in)
	outAddr, _ := x.AllocF32(make([]float32, 3))
	if _, tr := x.CallExport("reds", exec.PtrArgF32(a), exec.PtrArgF32(outAddr),
		exec.I32Arg(int64(len(in)))); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, _ := x.ReadF32(outAddr, 3)
	var mn, mx, sum float32 = in[0], in[0], 0
	for _, v := range in {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += v
	}
	if got[0] != mn || got[1] != mx {
		t.Fatalf("min/max = %v/%v, want %v/%v", got[0], got[1], mn, mx)
	}
	// Sum order differs (per-lane then reduce); allow small tolerance.
	if math.Abs(float64(got[2]-sum)) > 1e-3 {
		t.Fatalf("sum = %v, want %v", got[2], sum)
	}
}

func TestProgramIndexAndCount(t *testing.T) {
	src := `
export void idx(uniform int a[], uniform int n) {
	foreach (i = 0 ... n) {
		a[i] = programCount() * 100 + i;
	}
}
`
	for _, target := range isa.All {
		res := compileT(t, src, target)
		x := instT(t, res)
		n := 10
		a, _ := x.AllocI32(make([]int32, n))
		if _, tr := x.CallExport("idx", exec.PtrArgI32(a),
			exec.I32Arg(int64(n))); tr != nil {
			t.Fatalf("run: %v", tr)
		}
		got, _ := x.ReadI32(a, n)
		vl := int32(res.VL)
		for i := 0; i < n; i++ {
			want := vl*100 + int32(i)
			if got[i] != want {
				t.Fatalf("%s: a[%d] = %d, want %d", target, i, got[i], want)
			}
		}
	}
}

func TestPrintOutput(t *testing.T) {
	src := `
export void p(uniform int n) {
	print(n);
	print(n * 2);
	print(1.5);
}
`
	res := compileT(t, src, isa.AVX)
	x := instT(t, res)
	if _, tr := x.CallExport("p", exec.I32Arg(21)); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	want := "21\n42\n1.5\n"
	if got := x.It.Output.String(); got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}

func TestInt64AndDouble(t *testing.T) {
	src := `
export void wide(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		varying int64 big = (int64)a[i] * 1000000000 + 7;
		varying double d = (double)a[i] * 0.0000001;
		a[i] = (float)(big % 1000) + (float)(d * 10000000.0);
	}
}
`
	in := []float32{1, 2, 3, 5, 8, 13, 21, 34, 55}
	got := runF32Kernel(t, src, "wide", in)
	for i, v := range in {
		big := int64(v)*1000000000 + 7
		d := float64(v) * 0.0000001
		want := float32(big%1000) + float32(d*10000000.0)
		if math.Abs(float64(got[i]-want)) > 1e-3 {
			t.Fatalf("a[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestCompoundAssignOnArrays(t *testing.T) {
	src := `
export void comp(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		a[i] += 1.0;
		a[i] *= 2.0;
		a[i] -= 0.5;
		a[i] /= 4.0;
	}
}
`
	in := []float32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := runF32Kernel(t, src, "comp", in)
	for i, v := range in {
		want := ((v+1)*2 - 0.5) / 4
		if got[i] != want {
			t.Fatalf("a[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestLocalArrayScratch(t *testing.T) {
	src := `
export void hist(uniform int a[], uniform int out[], uniform int n) {
	uniform int counts[4];
	for (uniform int k = 0; k < 4; k++) {
		counts[k] = 0;
	}
	for (uniform int j = 0; j < n; j++) {
		uniform int b = a[j] % 4;
		counts[b] = counts[b] + 1;
	}
	for (uniform int k2 = 0; k2 < 4; k2++) {
		out[k2] = counts[k2];
	}
}
`
	res := compileT(t, src, isa.AVX)
	x := instT(t, res)
	in := []int32{0, 1, 2, 3, 0, 1, 2, 0, 1, 0}
	a, _ := x.AllocI32(in)
	out, _ := x.AllocI32(make([]int32, 4))
	if _, tr := x.CallExport("hist", exec.PtrArgI32(a), exec.PtrArgI32(out),
		exec.I32Arg(int64(len(in)))); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, _ := x.ReadI32(out, 4)
	want := []int32{4, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestCalleeStoresRespectPartialMask: a helper function that stores must
// honor the caller's partial foreach mask through the implicit mask
// parameter — otherwise the array tail would be clobbered.
func TestCalleeStoresRespectPartialMask(t *testing.T) {
	src := `
void writer(uniform float out[], varying int idx, varying float v) {
	out[idx] = v;
}

export void run(uniform float a[], uniform float b[], uniform int n) {
	foreach (i = 0 ... n) {
		writer(b, i, a[i] * 10.0);
	}
}
`
	res := compileT(t, src, isa.AVX)
	x := instT(t, res)
	n := 11 // 8 full + 3 partial lanes on AVX
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i)
	}
	a, _ := x.AllocF32(in)
	// b has extra sentinel cells past n that must stay untouched.
	bv := make([]float32, n+5)
	for i := range bv {
		bv[i] = -99
	}
	b, _ := x.AllocF32(bv)
	if _, tr := x.CallExport("run", exec.PtrArgF32(a), exec.PtrArgF32(b),
		exec.I32Arg(int64(n))); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, _ := x.ReadF32(b, n+5)
	for i := 0; i < n; i++ {
		if got[i] != float32(i)*10 {
			t.Fatalf("b[%d] = %v, want %v", i, got[i], float32(i)*10)
		}
	}
	for i := n; i < n+5; i++ {
		if got[i] != -99 {
			t.Fatalf("sentinel b[%d] clobbered: %v (callee ignored partial mask)",
				i, got[i])
		}
	}
}

func TestForeachEdgeCases(t *testing.T) {
	src := `
export void fill(uniform int a[], uniform int lo, uniform int hi) {
	foreach (i = lo ... hi) {
		a[i] = i * 10;
	}
}
`
	for _, target := range isa.All {
		res := compileT(t, src, target)
		cases := []struct{ lo, hi int }{
			{0, 0},  // empty
			{0, 3},  // partial only
			{0, 8},  // exactly one full gang (AVX)
			{3, 17}, // non-zero start, full+partial
			{5, 6},  // single element
		}
		for _, c := range cases {
			x := instT(t, res)
			buf := make([]int32, 32)
			for i := range buf {
				buf[i] = -1
			}
			a, _ := x.AllocI32(buf)
			if _, tr := x.CallExport("fill", exec.PtrArgI32(a),
				exec.I32Arg(int64(c.lo)), exec.I32Arg(int64(c.hi))); tr != nil {
				t.Fatalf("%s lo=%d hi=%d: %v", target, c.lo, c.hi, tr)
			}
			got, _ := x.ReadI32(a, 32)
			for i := 0; i < 32; i++ {
				want := int32(-1)
				if i >= c.lo && i < c.hi {
					want = int32(i) * 10
				}
				if got[i] != want {
					t.Fatalf("%s lo=%d hi=%d: a[%d] = %d, want %d",
						target, c.lo, c.hi, i, got[i], want)
				}
			}
		}
	}
}

func TestUniformIfWithReturns(t *testing.T) {
	src := `
export uniform int sign(uniform int x) {
	if (x > 0) {
		return 1;
	} else {
		if (x < 0) {
			return -1;
		}
	}
	return 0;
}
`
	res := compileT(t, src, isa.SSE)
	x := instT(t, res)
	for _, c := range []struct{ in, want int64 }{{5, 1}, {-5, -1}, {0, 0}} {
		got, tr := x.CallExport("sign", exec.I32Arg(c.in))
		if tr != nil {
			t.Fatalf("run: %v", tr)
		}
		if got.Int() != c.want {
			t.Fatalf("sign(%d) = %d, want %d", c.in, got.Int(), c.want)
		}
	}
}

func TestNestedVaryingControl(t *testing.T) {
	src := `
export void classify(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		varying float v = a[i];
		if (v > 0.0) {
			if (v > 10.0) {
				v = 100.0;
			} else {
				v = 1.0;
			}
		} else {
			while (v < -1.0) {
				v = v / 2.0;
			}
		}
		a[i] = v;
	}
}
`
	in := []float32{5, 20, -8, 0, 15, -0.5, 3, -32, 11}
	got := runF32Kernel(t, src, "classify", in)
	ref := func(v float32) float32 {
		if v > 0 {
			if v > 10 {
				return 100
			}
			return 1
		}
		for v < -1 {
			v /= 2
		}
		return v
	}
	for i, v := range in {
		if got[i] != ref(v) {
			t.Fatalf("a[%d] = %v, want %v (v=%v)", i, got[i], ref(v), v)
		}
	}
}

func TestSSEUsesPseudoMaskedOps(t *testing.T) {
	res := compileT(t, vcopySrc, isa.SSE)
	text := res.Module.Func("vcopy").String()
	if !strings.Contains(text, "llvm.vulfi.sse.maskload.d") {
		t.Errorf("SSE should lower masked loads to the per-lane pseudo-intrinsic:\n%s", text)
	}
	if res.VL != 4 {
		t.Errorf("SSE gang = %d, want 4", res.VL)
	}
}

// TestAVX512Gang16 runs vcopy at the extension ISA's gang size of 16.
func TestAVX512Gang16(t *testing.T) {
	res := compileT(t, vcopySrc, isa.AVX512)
	if res.VL != 16 {
		t.Fatalf("AVX512 gang = %d, want 16", res.VL)
	}
	x := instT(t, res)
	n := 37 // 32 full + 5 partial lanes
	in := make([]int32, n)
	for i := range in {
		in[i] = int32(i * 3)
	}
	a1, _ := x.AllocI32(in)
	a2, _ := x.AllocI32(make([]int32, n))
	if _, tr := x.CallExport("vcopy", exec.PtrArgI32(a1), exec.PtrArgI32(a2),
		exec.I32Arg(int64(n))); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, _ := x.ReadI32(a2, n)
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("a2[%d] = %d, want %d", i, got[i], in[i])
		}
	}
	text := res.Module.Func("vcopy").String()
	if !strings.Contains(text, "llvm.x86.avx512.maskload.d.512") {
		t.Errorf("AVX512 masked intrinsics missing:\n%s", text)
	}
}
