package codegen

import (
	"vulfi/internal/ir"
	"vulfi/internal/lang"
)

// Array access lowering. Three index shapes:
//
//   - uniform index: scalar getelementptr + scalar load/store;
//   - unit-stride varying index (the foreach induction variable plus a
//     uniform offset): a contiguous vector load/store — unmasked in the
//     foreach full body, via the ISA's masked intrinsics elsewhere
//     (this is what produces the paper's Figure 5 code);
//   - general varying index: masked gather/scatter.

type idxKind int

const (
	idxUniform idxKind = iota
	idxUnit
	idxGeneral
)

// isUnitStride reports whether e is the innermost foreach induction
// variable plus/minus a uniform int offset (pure analysis, emits nothing).
func (cg *fnGen) isUnitStride(e lang.Expr) bool {
	if cg.foreach == nil {
		return false
	}
	switch x := e.(type) {
	case *lang.Ident:
		return cg.mg.prog.Refs[x] == cg.foreach.sym
	case *lang.BinExpr:
		lu := cg.mg.prog.Types[x.X].Uniform
		ru := cg.mg.prog.Types[x.Y].Uniform
		switch x.Op {
		case lang.Plus:
			return (cg.isUnitStride(x.X) && ru) || (lu && cg.isUnitStride(x.Y))
		case lang.Minus:
			return cg.isUnitStride(x.X) && ru
		}
	}
	return false
}

// unitScalarIndex emits the scalar i32 index for a unit-stride access:
// the foreach scalar base (counter / aligned_end) combined with the
// uniform offset parts of e.
func (cg *fnGen) unitScalarIndex(e lang.Expr) ir.Value {
	switch x := e.(type) {
	case *lang.Ident:
		return cg.foreach.scalarBase
	case *lang.BinExpr:
		uniformI32 := func(sub lang.Expr) ir.Value {
			v := cg.expr(sub)
			return cg.convert(v, cg.mg.prog.Types[sub],
				lang.VType{Base: lang.TInt, Uniform: true}, "")
		}
		switch x.Op {
		case lang.Plus:
			if cg.isUnitStride(x.X) {
				return cg.bu.Add(cg.unitScalarIndex(x.X), uniformI32(x.Y), "")
			}
			return cg.bu.Add(uniformI32(x.X), cg.unitScalarIndex(x.Y), "")
		case lang.Minus:
			return cg.bu.Sub(cg.unitScalarIndex(x.X), uniformI32(x.Y), "")
		}
	}
	panic("codegen: unitScalarIndex on non-unit expression")
}

func (cg *fnGen) indexKind(idx lang.Expr) idxKind {
	if cg.mg.prog.Types[idx].Uniform {
		return idxUniform
	}
	if cg.isUnitStride(idx) {
		return idxUnit
	}
	return idxGeneral
}

// generalIndexVec emits the <Vl x i32> index vector for a gather/scatter.
func (cg *fnGen) generalIndexVec(idx lang.Expr) ir.Value {
	v := cg.expr(idx)
	return cg.convert(v, cg.mg.prog.Types[idx],
		lang.VType{Base: lang.TInt, Uniform: false}, "gidx")
}

// loadIndex lowers a[idx] reads.
func (cg *fnGen) loadIndex(x *lang.IndexExpr) ir.Value {
	arrSym := cg.mg.prog.Refs[x.Array]
	base := cg.env[arrSym]
	elem := scalarType(arrSym.Type.Base)
	switch cg.indexKind(x.Index) {
	case idxUniform:
		iv := cg.expr(x.Index) // scalar int (i32 or i64)
		p := cg.bu.GEP(base, iv, x.Array.Name+"_ld_addr")
		return cg.bu.Load(p, "")
	case idxUnit:
		iv := cg.unitScalarIndex(x.Index)
		p := cg.bu.GEP(base, iv, x.Array.Name+"_ld_addr")
		if cg.allOn {
			vp := cg.bu.Cast(ir.OpBitcast, p, ir.Ptr(ir.Vec(elem, cg.mg.vl)), "")
			return cg.bu.Load(vp, "")
		}
		return cg.bu.Call(cg.mg.intr.MaskLoad(elem, cg.mg.vl), "",
			p, cg.maskFor(elem))
	default:
		iv := cg.generalIndexVec(x.Index)
		return cg.bu.Call(cg.mg.intr.Gather(elem, cg.mg.vl), "",
			base, iv, cg.maskFor(elem))
	}
}

// storeIndex lowers a[idx] = val. val already has the checked element
// type at the index's uniformity (lt).
func (cg *fnGen) storeIndex(x *lang.IndexExpr, val ir.Value, lt lang.VType) {
	arrSym := cg.mg.prog.Refs[x.Array]
	base := cg.env[arrSym]
	elem := scalarType(arrSym.Type.Base)
	switch cg.indexKind(x.Index) {
	case idxUniform:
		iv := cg.expr(x.Index)
		p := cg.bu.GEP(base, iv, x.Array.Name+"_str_addr")
		cg.bu.Store(val, p)
	case idxUnit:
		iv := cg.unitScalarIndex(x.Index)
		p := cg.bu.GEP(base, iv, x.Array.Name+"_str_addr")
		if cg.allOn {
			vp := cg.bu.Cast(ir.OpBitcast, p, ir.Ptr(ir.Vec(elem, cg.mg.vl)), "")
			cg.bu.Store(val, vp)
			return
		}
		cg.bu.Call(cg.mg.intr.MaskStore(elem, cg.mg.vl), "",
			p, cg.maskFor(elem), val)
	default:
		iv := cg.generalIndexVec(x.Index)
		cg.bu.Call(cg.mg.intr.Scatter(elem, cg.mg.vl), "",
			base, iv, cg.maskFor(elem), val)
	}
}
