package codegen_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/detect"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

var updateGolden = flag.Bool("update", false, "rewrite golden IR files")

// TestGoldenVCopyIR pins the complete lowered IR of the paper's Figure 6
// kernel (with the Figure 7 detector block inserted) against a golden
// file. Any unintended change to the foreach lowering — block structure,
// value naming, masked intrinsic selection — shows up as a readable diff.
func TestGoldenVCopyIR(t *testing.T) {
	for _, target := range isa.All {
		t.Run(target.Name, func(t *testing.T) {
			res, err := codegen.CompileSource(vcopySrc, target, "vcopy")
			if err != nil {
				t.Fatal(err)
			}
			p := &detect.ForeachInvariantPass{}
			pm := &passes.Manager{Verify: true}
			pm.Add(p)
			if err := pm.Run(res.Module); err != nil {
				t.Fatal(err)
			}
			got := res.Module.String()
			path := filepath.Join("testdata", "vcopy_"+target.Name+".ll")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("lowered IR drifted from golden file %s.\n--- got\n%s",
					path, got)
			}
		})
	}
}
