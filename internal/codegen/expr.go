package codegen

import (
	"fmt"

	"vulfi/internal/ir"
	"vulfi/internal/lang"
)

// expr lowers an expression; the result has the checked type of e
// (scalar IR type for uniform, <Vl x T> for varying).
func (cg *fnGen) expr(e lang.Expr) ir.Value {
	switch x := e.(type) {
	case *lang.IntLit:
		return ir.ConstInt(ir.I32, x.V)
	case *lang.FloatLit:
		return ir.ConstFloat(ir.F32, x.V)
	case *lang.BoolLit:
		return ir.ConstBool(x.V)
	case *lang.Ident:
		sym := cg.mg.prog.Refs[x]
		v, ok := cg.env[sym]
		if !ok {
			panic(fmt.Sprintf("codegen: no value for symbol %q", sym.Name))
		}
		return v
	case *lang.IndexExpr:
		return cg.loadIndex(x)
	case *lang.UnExpr:
		return cg.unExpr(x)
	case *lang.BinExpr:
		return cg.binExpr(x)
	case *lang.CastExpr:
		v := cg.expr(x.X)
		return cg.convert(v, cg.mg.prog.Types[x.X], cg.mg.prog.Types[x], "")
	case *lang.CallExpr:
		return cg.callExpr(x)
	}
	panic(fmt.Sprintf("codegen: unhandled expression %T", e))
}

func (cg *fnGen) unExpr(x *lang.UnExpr) ir.Value {
	t := cg.mg.prog.Types[x]
	v := cg.expr(x.X)
	switch x.Op {
	case lang.Minus:
		if t.IsFloatBase() {
			zero := ir.ConstFloat(scalarType(t.Base), 0)
			var z ir.Value = zero
			if !t.Uniform {
				z = ir.ConstSplat(cg.mg.vl, zero)
			}
			return cg.bu.FSub(z, v, "neg")
		}
		zero := ir.ConstInt(scalarType(t.Base), 0)
		var z ir.Value = zero
		if !t.Uniform {
			z = ir.ConstSplat(cg.mg.vl, zero)
		}
		return cg.bu.Sub(z, v, "neg")
	case lang.Not:
		tru := ir.ConstBool(true)
		var one ir.Value = tru
		if !t.Uniform {
			one = ir.ConstSplat(cg.mg.vl, tru)
		}
		return cg.bu.Xor(v, one, "not")
	}
	panic("codegen: unhandled unary op")
}

func (cg *fnGen) binExpr(x *lang.BinExpr) ir.Value {
	lt := cg.mg.prog.Types[x.X]
	rt := cg.mg.prog.Types[x.Y]
	resT := cg.mg.prog.Types[x]

	// Operand promotion type: the result type for arithmetic, the common
	// numeric type (with joined uniformity) for comparisons.
	opT := resT
	if resT.Base == lang.TBool && lt.Base != lang.TBool {
		opT = lang.VType{Base: commonBase(lt.Base, rt.Base),
			Uniform: lt.Uniform && rt.Uniform}
	}

	l := cg.convert(cg.expr(x.X), lt, opT, "")
	r := cg.convert(cg.expr(x.Y), rt, opT, "")

	isFloat := opT.IsFloatBase()
	switch x.Op {
	case lang.Plus:
		if isFloat {
			return cg.bu.FAdd(l, r, "")
		}
		return cg.bu.Add(l, r, "")
	case lang.Minus:
		if isFloat {
			return cg.bu.FSub(l, r, "")
		}
		return cg.bu.Sub(l, r, "")
	case lang.Star:
		if isFloat {
			return cg.bu.FMul(l, r, "")
		}
		return cg.bu.Mul(l, r, "")
	case lang.Slash:
		if isFloat {
			return cg.bu.FDiv(l, r, "")
		}
		return cg.bu.SDiv(l, r, "")
	case lang.Percent:
		return cg.bu.SRem(l, r, "")
	case lang.Amp:
		return cg.bu.And(l, r, "")
	case lang.Pipe:
		return cg.bu.Or(l, r, "")
	case lang.Caret:
		return cg.bu.Xor(l, r, "")
	case lang.Shl:
		return cg.bu.Shl(l, r, "")
	case lang.Shr:
		return cg.bu.AShr(l, r, "")
	case lang.AndAnd:
		return cg.bu.And(l, r, "")
	case lang.OrOr:
		return cg.bu.Or(l, r, "")
	case lang.EqEq, lang.NotEq, lang.Lt, lang.Le, lang.Gt, lang.Ge:
		if isFloat {
			return cg.bu.FCmp(floatPred(x.Op), l, r, "")
		}
		return cg.bu.ICmp(intPred(x.Op), l, r, "")
	}
	panic("codegen: unhandled binary op " + x.Op.String())
}

func commonBase(a, b lang.BaseType) lang.BaseType {
	order := map[lang.BaseType]int{
		lang.TBool: 0, lang.TInt: 1, lang.TInt64: 2,
		lang.TFloat: 3, lang.TDouble: 4,
	}
	if order[a] >= order[b] {
		return a
	}
	return b
}

func intPred(op lang.Kind) ir.Pred {
	switch op {
	case lang.EqEq:
		return ir.IntEQ
	case lang.NotEq:
		return ir.IntNE
	case lang.Lt:
		return ir.IntSLT
	case lang.Le:
		return ir.IntSLE
	case lang.Gt:
		return ir.IntSGT
	case lang.Ge:
		return ir.IntSGE
	}
	panic("codegen: not a comparison")
}

func floatPred(op lang.Kind) ir.Pred {
	switch op {
	case lang.EqEq:
		return ir.FloatOEQ
	case lang.NotEq:
		return ir.FloatUNE
	case lang.Lt:
		return ir.FloatOLT
	case lang.Le:
		return ir.FloatOLE
	case lang.Gt:
		return ir.FloatOGT
	case lang.Ge:
		return ir.FloatOGE
	}
	panic("codegen: not a comparison")
}

// callExpr lowers builtin and user-function calls. User calls pass the
// current execution mask as the implicit trailing argument.
func (cg *fnGen) callExpr(x *lang.CallExpr) ir.Value {
	if lang.IsBuiltin(x.Name) {
		return cg.builtinCall(x)
	}
	fi := cg.mg.prog.Funcs[x.Name]
	callee := cg.mg.fns[x.Name]
	args := make([]ir.Value, 0, len(x.Args)+1)
	for i, a := range x.Args {
		av := cg.expr(a)
		args = append(args, cg.convert(av, cg.mg.prog.Types[a], fi.Params[i].Type, ""))
	}
	args = append(args, cg.mask)
	return cg.bu.Call(callee, x.Name+"_ret", args...)
}
