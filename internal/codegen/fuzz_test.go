package codegen_test

import (
	"fmt"
	"math/rand"
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
)

// Differential testing of the whole compile+execute pipeline: random
// expression kernels are generated together with a float32 Go reference
// evaluator; results must match bit-for-bit (the chosen operator set is
// exactly rounded in float32, so there is no tolerance).

type genExpr struct {
	src  string
	eval func(v, u float32, i int32) float32
}

func genExprTree(r *rand.Rand, depth int) genExpr {
	leaf := func() genExpr {
		switch r.Intn(4) {
		case 0:
			c := float32(r.Intn(17)-8) / 2 // exact halves
			return genExpr{fmt.Sprintf("%g", c),
				func(v, u float32, i int32) float32 { return c }}
		case 1:
			return genExpr{"v", func(v, u float32, i int32) float32 { return v }}
		case 2:
			return genExpr{"u", func(v, u float32, i int32) float32 { return u }}
		default:
			return genExpr{"(float)i",
				func(v, u float32, i int32) float32 { return float32(i) }}
		}
	}
	if depth <= 0 {
		return leaf()
	}
	a := genExprTree(r, depth-1)
	b := genExprTree(r, depth-1)
	switch r.Intn(7) {
	case 0:
		return genExpr{"(" + a.src + " + " + b.src + ")",
			func(v, u float32, i int32) float32 { return a.eval(v, u, i) + b.eval(v, u, i) }}
	case 1:
		return genExpr{"(" + a.src + " - " + b.src + ")",
			func(v, u float32, i int32) float32 { return a.eval(v, u, i) - b.eval(v, u, i) }}
	case 2:
		return genExpr{"(" + a.src + " * " + b.src + ")",
			func(v, u float32, i int32) float32 { return a.eval(v, u, i) * b.eval(v, u, i) }}
	case 3:
		return genExpr{"min(" + a.src + ", " + b.src + ")",
			func(v, u float32, i int32) float32 {
				x, y := a.eval(v, u, i), b.eval(v, u, i)
				if x < y { // matches fcmp olt + select
					return x
				}
				return y
			}}
	case 4:
		return genExpr{"max(" + a.src + ", " + b.src + ")",
			func(v, u float32, i int32) float32 {
				x, y := a.eval(v, u, i), b.eval(v, u, i)
				if x > y {
					return x
				}
				return y
			}}
	case 5:
		return genExpr{"abs(" + a.src + ")",
			func(v, u float32, i int32) float32 {
				x := a.eval(v, u, i)
				if x < 0 {
					return -x
				}
				return x
			}}
	default:
		c := genExprTree(r, depth-1)
		return genExpr{"select(" + a.src + " > " + b.src + ", " + c.src + ", v)",
			func(v, u float32, i int32) float32 {
				if a.eval(v, u, i) > b.eval(v, u, i) {
					return c.eval(v, u, i)
				}
				return v
			}}
	}
}

func TestDifferentialRandomKernels(t *testing.T) {
	r := rand.New(rand.NewSource(20160516))
	for trial := 0; trial < 60; trial++ {
		e := genExprTree(r, 2+r.Intn(3))
		src := fmt.Sprintf(`
export void k(uniform float a[], uniform int n, uniform float u) {
	foreach (i = 0 ... n) {
		varying float v = a[i];
		a[i] = %s;
	}
}
`, e.src)
		target := isa.All[trial%2]
		res, err := codegen.CompileSource(src, target, "fuzz")
		if err != nil {
			t.Fatalf("trial %d: compile %q: %v", trial, e.src, err)
		}
		x, err := exec.NewInstance(res, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := 13
		in := make([]float32, n)
		for i := range in {
			in[i] = float32(r.Intn(41)-20) / 4
		}
		u := float32(r.Intn(21)-10) / 2
		a, _ := x.AllocF32(in)
		if _, tr := x.CallExport("k", exec.PtrArgF32(a), exec.I32Arg(int64(n)),
			exec.F32Arg(float64(u))); tr != nil {
			t.Fatalf("trial %d (%s): run %q: %v", trial, target, e.src, tr)
		}
		got, _ := x.ReadF32(a, n)
		for i := 0; i < n; i++ {
			want := e.eval(in[i], u, int32(i))
			if got[i] != want {
				t.Fatalf("trial %d (%s): expr %q: a[%d]=%v want %v (v=%v u=%v)",
					trial, target, e.src, i, got[i], want, in[i], u)
			}
		}
	}
}

// TestDifferentialIntKernels does the same for exact int32 arithmetic
// with varying ifs (predication paths).
func TestDifferentialIntKernels(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		// Random coefficients for a branchy integer kernel.
		c1 := int32(r.Intn(9) - 4)
		c2 := int32(r.Intn(9) - 4)
		c3 := int32(r.Intn(100) - 50)
		src := fmt.Sprintf(`
export void k(uniform int a[], uniform int n) {
	foreach (i = 0 ... n) {
		varying int v = a[i];
		if (v > %d) {
			v = v * %d + i;
		} else {
			v = v - %d * i;
		}
		a[i] = v;
	}
}
`, c3, c1, c2)
		res, err := codegen.CompileSource(src, isa.AVX, "fuzzint")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x, _ := exec.NewInstance(res, interp.Options{})
		n := 21
		in := make([]int32, n)
		for i := range in {
			in[i] = int32(r.Intn(301) - 150)
		}
		a, _ := x.AllocI32(in)
		if _, tr := x.CallExport("k", exec.PtrArgI32(a), exec.I32Arg(int64(n))); tr != nil {
			t.Fatalf("trial %d: %v", trial, tr)
		}
		got, _ := x.ReadI32(a, n)
		for i := 0; i < n; i++ {
			v := in[i]
			var want int32
			if v > c3 {
				want = v*c1 + int32(i)
			} else {
				want = v - c2*int32(i)
			}
			if got[i] != want {
				t.Fatalf("trial %d: a[%d]=%d want %d (v=%d c1=%d c2=%d c3=%d)",
					trial, i, got[i], want, v, c1, c2, c3)
			}
		}
	}
}
