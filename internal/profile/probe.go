// Package profile is the interpreter's execution profiler: per-opcode
// dynamic counts and wall-time attribution, per-static-site hot
// rankings keyed by the shared trace.SiteKey spelling, opcode-pair
// frequency mining (the superinstruction candidate list for a compiled
// backend), and a campaign phase breakdown with an experiments/second
// timeline. It is deterministic where it can be — every count is a pure
// function of the study configuration — and honest where it cannot:
// wall-time fields measure this machine, this run.
//
// The package implements interp.Profiler structurally rather than
// importing interp (profile needs trace for the site-key spelling, and
// trace already sits on top of interp).
package profile

import (
	"time"

	"vulfi/internal/ir"
)

// Probe is the per-run accumulator a single interpreter instance feeds
// through its Account hook. It is deliberately unsynchronized — one
// probe per running interpreter, merged into the study-wide Collector
// after the run — mirroring how interp.Metrics batches counters locally
// and flushes at call boundaries.
//
// Attribution is delta-based: Account fires before an instruction
// executes, so the time between consecutive Account calls — execution
// of the previous instruction plus dispatch overhead — is attributed to
// the previous instruction's opcode and static site. Finish closes the
// final open interval (the terminator that ended the run).
type Probe struct {
	count  [ir.NumOps]uint64
	vector [ir.NumOps]uint64
	timeNS [ir.NumOps]uint64
	// pairs is the dense (prev, next) opcode digram table, flattened as
	// prev*NumOps+next: the superinstruction candidate miner.
	pairs [ir.NumOps * ir.NumOps]uint64

	// siteCount/siteNS key on instruction identity; the Collector
	// resolves pointers to site-key strings once per merge, keeping
	// string formatting off the hot path entirely.
	siteCount map[*ir.Instr]uint64
	siteNS    map[*ir.Instr]uint64

	lastIn *ir.Instr
	// lastGroup is non-empty when the last hook call was AccountFused:
	// the open interval then belongs to the whole fused group, not just
	// its final constituent.
	lastGroup []*ir.Instr
	lastT     time.Time
	total     uint64
}

// NewProbe returns an empty probe. Prefer Collector.Probe, which
// recycles merged probes across runs.
func NewProbe() *Probe {
	return &Probe{
		siteCount: map[*ir.Instr]uint64{},
		siteNS:    map[*ir.Instr]uint64{},
	}
}

// Account implements the interp.Profiler hook: it receives exactly the
// instruction stream behind the interpreter's DynInstrs counter (phis,
// terminators and void instructions included), so Total structurally
// equals the run's DynInstrs.
func (p *Probe) Account(in *ir.Instr) {
	now := time.Now()
	p.closeInterval(now, in)
	p.tally(in)
	p.lastIn, p.lastGroup, p.lastT = in, nil, now
}

// AccountFused implements the interp.FusedProfiler hook: a compiled
// backend executing a fused superinstruction reports its constituent
// instructions in a single call. Counts, vector tallies, per-site
// counts and the opcode digram table advance exactly as a sequence of
// Account calls would — Total still structurally equals the run's
// DynInstrs, and the pair miner keeps observing the very digram the
// fusion was selected from. The interval that ends at the *next* hook
// call is split evenly across the group's constituents (remainder to
// the last, conserving total nanoseconds), since the fused form
// executes them as one indivisible step.
func (p *Probe) AccountFused(ins []*ir.Instr) {
	if len(ins) == 0 {
		return
	}
	now := time.Now()
	p.closeInterval(now, ins[0])
	prev := ins[0]
	p.tally(prev)
	for _, in := range ins[1:] {
		p.pairs[int(prev.Op)*int(ir.NumOps)+int(in.Op)]++
		p.tally(in)
		prev = in
	}
	p.lastIn, p.lastGroup, p.lastT = prev, ins, now
}

// closeInterval attributes the open interval ending at now — the
// previous instruction's execution plus dispatch overhead — and, when
// next is known, advances the digram table. A fused group splits the
// interval across its constituents.
func (p *Probe) closeInterval(now time.Time, next *ir.Instr) {
	prev := p.lastIn
	if prev == nil {
		return
	}
	d := uint64(now.Sub(p.lastT))
	if n := uint64(len(p.lastGroup)); n > 1 {
		share := d / n
		for i, g := range p.lastGroup {
			dg := share
			if uint64(i) == n-1 {
				dg = d - share*(n-1)
			}
			p.timeNS[g.Op] += dg
			p.siteNS[g] += dg
		}
	} else {
		p.timeNS[prev.Op] += d
		p.siteNS[prev] += d
	}
	if next != nil {
		p.pairs[int(prev.Op)*int(ir.NumOps)+int(next.Op)]++
	}
}

// tally advances the pure-count tables for one accounted instruction.
func (p *Probe) tally(in *ir.Instr) {
	p.count[in.Op]++
	if in.IsVectorInstr() {
		p.vector[in.Op]++
	}
	p.siteCount[in]++
	p.total++
}

// Finish attributes the final open interval (the last accounted
// instruction's own execution) and ends the run. Safe to call twice.
func (p *Probe) Finish() {
	if p.lastIn != nil {
		p.closeInterval(time.Now(), nil)
		p.lastIn, p.lastGroup = nil, nil
	}
}

// Total returns the number of accounted instructions so far.
func (p *Probe) Total() uint64 { return p.total }

// reset clears the probe for reuse, keeping its maps allocated.
func (p *Probe) reset() {
	p.count = [ir.NumOps]uint64{}
	p.vector = [ir.NumOps]uint64{}
	p.timeNS = [ir.NumOps]uint64{}
	p.pairs = [ir.NumOps * ir.NumOps]uint64{}
	clear(p.siteCount)
	clear(p.siteNS)
	p.lastIn, p.lastGroup = nil, nil
	p.total = 0
}
