// Package profile is the interpreter's execution profiler: per-opcode
// dynamic counts and wall-time attribution, per-static-site hot
// rankings keyed by the shared trace.SiteKey spelling, opcode-pair
// frequency mining (the superinstruction candidate list for a compiled
// backend), and a campaign phase breakdown with an experiments/second
// timeline. It is deterministic where it can be — every count is a pure
// function of the study configuration — and honest where it cannot:
// wall-time fields measure this machine, this run.
//
// The package implements interp.Profiler structurally rather than
// importing interp (profile needs trace for the site-key spelling, and
// trace already sits on top of interp).
package profile

import (
	"time"

	"vulfi/internal/ir"
)

// Probe is the per-run accumulator a single interpreter instance feeds
// through its Account hook. It is deliberately unsynchronized — one
// probe per running interpreter, merged into the study-wide Collector
// after the run — mirroring how interp.Metrics batches counters locally
// and flushes at call boundaries.
//
// Attribution is delta-based: Account fires before an instruction
// executes, so the time between consecutive Account calls — execution
// of the previous instruction plus dispatch overhead — is attributed to
// the previous instruction's opcode and static site. Finish closes the
// final open interval (the terminator that ended the run).
type Probe struct {
	count  [ir.NumOps]uint64
	vector [ir.NumOps]uint64
	timeNS [ir.NumOps]uint64
	// pairs is the dense (prev, next) opcode digram table, flattened as
	// prev*NumOps+next: the superinstruction candidate miner.
	pairs [ir.NumOps * ir.NumOps]uint64

	// siteCount/siteNS key on instruction identity; the Collector
	// resolves pointers to site-key strings once per merge, keeping
	// string formatting off the hot path entirely.
	siteCount map[*ir.Instr]uint64
	siteNS    map[*ir.Instr]uint64

	lastIn *ir.Instr
	lastT  time.Time
	total  uint64
}

// NewProbe returns an empty probe. Prefer Collector.Probe, which
// recycles merged probes across runs.
func NewProbe() *Probe {
	return &Probe{
		siteCount: map[*ir.Instr]uint64{},
		siteNS:    map[*ir.Instr]uint64{},
	}
}

// Account implements the interp.Profiler hook: it receives exactly the
// instruction stream behind the interpreter's DynInstrs counter (phis,
// terminators and void instructions included), so Total structurally
// equals the run's DynInstrs.
func (p *Probe) Account(in *ir.Instr) {
	now := time.Now()
	if prev := p.lastIn; prev != nil {
		d := uint64(now.Sub(p.lastT))
		p.timeNS[prev.Op] += d
		p.siteNS[prev] += d
		p.pairs[int(prev.Op)*int(ir.NumOps)+int(in.Op)]++
	}
	p.count[in.Op]++
	if in.IsVectorInstr() {
		p.vector[in.Op]++
	}
	p.siteCount[in]++
	p.total++
	p.lastIn, p.lastT = in, now
}

// Finish attributes the final open interval (the last accounted
// instruction's own execution) and ends the run. Safe to call twice.
func (p *Probe) Finish() {
	if prev := p.lastIn; prev != nil {
		d := uint64(time.Since(p.lastT))
		p.timeNS[prev.Op] += d
		p.siteNS[prev] += d
		p.lastIn = nil
	}
}

// Total returns the number of accounted instructions so far.
func (p *Probe) Total() uint64 { return p.total }

// reset clears the probe for reuse, keeping its maps allocated.
func (p *Probe) reset() {
	p.count = [ir.NumOps]uint64{}
	p.vector = [ir.NumOps]uint64{}
	p.timeNS = [ir.NumOps]uint64{}
	p.pairs = [ir.NumOps * ir.NumOps]uint64{}
	clear(p.siteCount)
	clear(p.siteNS)
	p.lastIn = nil
	p.total = 0
}
