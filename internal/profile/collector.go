package profile

import (
	"sync"
	"time"

	"vulfi/internal/ir"
	"vulfi/internal/trace"
)

// Canonical campaign phase names, in presentation order. "faulty"
// covers the issue's inject+run pair: injection happens inside the
// faulty execution (the plan arms a dynamic trigger), so the two are
// one measurable interval.
var PhaseOrder = []string{"compile", "golden", "faulty", "compare"}

// siteID is an instruction's resolved static identity: the three frames
// of its folded stack and the canonical trace.SiteKey spelling.
type siteID struct {
	fn, block, instr string
	key              string
}

// siteAgg accumulates one static site's dynamic cost within a phase.
type siteAgg struct {
	id    siteID
	count uint64
	ns    uint64
}

// phaseAgg accumulates one campaign phase.
type phaseAgg struct {
	wall  time.Duration
	dyn   uint64
	sites map[string]*siteAgg
}

// Collector is the study-wide profile aggregator. Probes merge into it
// under a mutex (Add), campaign phases report wall time (Phase), and
// experiment completions mark the throughput timeline (MarkExperiment).
// All methods are safe for concurrent use from campaign workers.
type Collector struct {
	mu     sync.Mutex
	count  [ir.NumOps]uint64
	vector [ir.NumOps]uint64
	timeNS [ir.NumOps]uint64
	pairs  [ir.NumOps * ir.NumOps]uint64

	runs   int
	phases map[string]*phaseAgg

	// names caches instruction-pointer → resolved identity, so String
	// formatting happens once per static site per interpreter instance,
	// not once per merge.
	names map[*ir.Instr]siteID

	t0    time.Time
	marks []time.Duration

	free []*Probe
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		phases: map[string]*phaseAgg{},
		names:  map[*ir.Instr]siteID{},
	}
}

// Probe returns a probe ready to attach to an interpreter, recycling
// one merged by a previous Add when available.
func (c *Collector) Probe() *Probe {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.free); n > 0 {
		p := c.free[n-1]
		c.free = c.free[:n-1]
		return p
	}
	return NewProbe()
}

// Add finishes the probe, folds it into the collector under the given
// phase, and recycles it — the caller must not touch p afterwards.
func (c *Collector) Add(phase string, p *Probe) {
	p.Finish()
	c.mu.Lock()
	defer c.mu.Unlock()
	for op := 0; op < int(ir.NumOps); op++ {
		c.count[op] += p.count[op]
		c.vector[op] += p.vector[op]
		c.timeNS[op] += p.timeNS[op]
	}
	for i, n := range p.pairs {
		if n > 0 {
			c.pairs[i] += n
		}
	}
	pa := c.phase(phase)
	pa.dyn += p.total
	for in, n := range p.siteCount {
		id, ok := c.names[in]
		if !ok {
			id = resolve(in)
			c.names[in] = id
		}
		s := pa.sites[id.key]
		if s == nil {
			s = &siteAgg{id: id}
			pa.sites[id.key] = s
		}
		s.count += n
		s.ns += p.siteNS[in]
	}
	c.runs++
	p.reset()
	c.free = append(c.free, p)
}

// Phase accumulates wall time against a campaign phase (compile time,
// the golden/faulty/compare intervals the cell already histograms).
func (c *Collector) Phase(name string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.phase(name).wall += d
}

func (c *Collector) phase(name string) *phaseAgg {
	pa := c.phases[name]
	if pa == nil {
		pa = &phaseAgg{sites: map[string]*siteAgg{}}
		c.phases[name] = pa
	}
	return pa
}

// StartTimeline anchors the throughput timeline; the first call wins.
func (c *Collector) StartTimeline(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t0.IsZero() {
		c.t0 = t
	}
}

// MarkExperiment records one completed experiment on the timeline.
func (c *Collector) MarkExperiment() {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t0.IsZero() {
		c.t0 = now
	}
	c.marks = append(c.marks, now.Sub(c.t0))
}

// resolve derives an instruction's static identity, sharing the
// trace.SiteKey spelling with the blame ranking and the atlas so hot
// sites and SDC-prone sites land under the same key.
func resolve(in *ir.Instr) siteID {
	id := siteID{fn: "?", block: "?", instr: in.String()}
	if b := in.Parent; b != nil {
		id.block = b.Nam
		if b.Func != nil {
			id.fn = b.Func.Nam
		}
	}
	id.key = trace.SiteKey(id.fn, id.block, id.instr)
	return id
}
