package profile

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WriteFolded serializes the profile's stacks in the folded-stack
// format standard flamegraph tooling consumes: one line per stack,
// semicolon-separated frames, the sample value after the last space.
// The frame chain is phase;function;block;instruction and the value is
// the dynamic instruction count (deterministic for a configuration,
// unlike wall time). Semicolons and newlines inside instruction text
// are rewritten so frames never split.
func WriteFolded(w io.Writer, p *Profile) error {
	bw := bufio.NewWriter(w)
	for _, s := range p.Stacks {
		if s.Count == 0 {
			continue
		}
		bw.WriteString(frame(s.Phase))
		bw.WriteByte(';')
		bw.WriteString(frame(s.Func))
		bw.WriteByte(';')
		bw.WriteString(frame(s.Block))
		bw.WriteByte(';')
		bw.WriteString(frame(s.Instr))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(s.Count, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

var frameSanitizer = strings.NewReplacer(";", ",", "\n", " ")

// frame makes a string safe as one folded-stack frame.
func frame(s string) string {
	if s == "" {
		return "?"
	}
	return frameSanitizer.Replace(s)
}
