package profile

import (
	"embed"
	"encoding/json"
	"html/template"
	"io"
)

//go:embed flame.html
var flameFS embed.FS

var flameTmpl = template.Must(template.ParseFS(flameFS, "flame.html"))

// flameView is the template payload: the profile serialized once as
// JSON for the inline script. json.Marshal escapes <, > and & by
// default, so the payload cannot break out of the script element.
type flameView struct {
	Title string
	JSON  template.JS
}

// WriteFlameHTML renders the self-contained flame-graph page (atlas
// style: no external assets, archivable as a single artifact). The
// icicle is phase → function → block → instruction, cell width
// proportional to dynamic instruction count, with the per-opcode table
// and phase/timeline summaries alongside.
func (p *Profile) WriteFlameHTML(w io.Writer, title string) error {
	b, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return flameTmpl.Execute(w, flameView{Title: title, JSON: template.JS(b)})
}
