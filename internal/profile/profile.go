package profile

import (
	"sort"
	"time"

	"vulfi/internal/ir"
)

// Caps keep the exported profile a readable decision document rather
// than a dump: full detail stays available through Stacks (every site,
// every phase), which the folded output serializes.
const (
	maxPairs      = 20
	maxSites      = 30
	timelineCells = 30
)

// Profile is the JSON-exported execution profile of one study. Every
// count field is deterministic for a given configuration; the *NS,
// *Pct-of-time and throughput fields are wall-clock measurements and
// vary run to run (determinism tests zero them, like StudyResult.Wall).
type Profile struct {
	// Runs is the number of profiled interpreter executions (golden
	// cache hits and checkpoint-replayed experiments never re-execute,
	// so they are invisible here by design).
	Runs        int    `json:"runs"`
	Experiments int    `json:"experiments"`
	TotalDyn    uint64 `json:"total_dyn"`
	TotalVector uint64 `json:"total_vector"`
	WallNS      int64  `json:"wall_ns"`
	// ExpPerSec is the study-level throughput: Experiments over the
	// timeline's wall span.
	ExpPerSec float64 `json:"exp_per_sec"`

	// Ops ranks opcodes by dynamic count — the compiled backend's
	// lowering priority list.
	Ops []OpRow `json:"ops"`
	// Pairs ranks (prev, next) opcode digrams by frequency — the
	// superinstruction candidate list.
	Pairs []PairRow `json:"pairs,omitempty"`
	// Sites ranks static sites by dynamic count, keyed by the shared
	// trace.SiteKey spelling.
	Sites []SiteRow `json:"sites,omitempty"`
	// Phases is the campaign phase breakdown (wall + instructions).
	Phases []PhaseRow `json:"phases,omitempty"`
	// Timeline buckets experiment completions into equal wall-time
	// cells — the exp/s trajectory across the study.
	Timeline []TimelineCell `json:"timeline,omitempty"`
	// Stacks carries every phase/site row — the folded-stack source the
	// flame graph and WriteFolded consume.
	Stacks []StackRow `json:"stacks,omitempty"`
}

// OpRow is one opcode's aggregate cost.
type OpRow struct {
	Op       string  `json:"op"`
	Count    uint64  `json:"count"`
	Vector   uint64  `json:"vector,omitempty"`
	TimeNS   uint64  `json:"time_ns"`
	CountPct float64 `json:"count_pct"`
	TimePct  float64 `json:"time_pct"`
}

// PairRow is one (prev, next) opcode digram.
type PairRow struct {
	First  string `json:"first"`
	Second string `json:"second"`
	Count  uint64 `json:"count"`
}

// SiteRow is one static site's aggregate cost across all phases.
type SiteRow struct {
	Site   string `json:"site"`
	Count  uint64 `json:"count"`
	TimeNS uint64 `json:"time_ns"`
}

// PhaseRow is one campaign phase's share of the study.
type PhaseRow struct {
	Phase  string `json:"phase"`
	WallNS int64  `json:"wall_ns"`
	// Dyn is the instructions retired inside this phase's interpreter
	// runs (zero for phases that execute no guest code, like compare).
	Dyn uint64 `json:"dyn,omitempty"`
}

// TimelineCell is one wall-time bucket of experiment completions.
type TimelineCell struct {
	OffsetNS    int64   `json:"offset_ns"`
	Experiments int     `json:"experiments"`
	ExpPerSec   float64 `json:"exp_per_sec"`
}

// StackRow is one phase/site folded-stack frame chain with its sample
// value (dynamic instruction count; TimeNS rides along for tooling that
// prefers time-weighted graphs).
type StackRow struct {
	Phase  string `json:"phase"`
	Func   string `json:"func"`
	Block  string `json:"block"`
	Instr  string `json:"instr"`
	Count  uint64 `json:"count"`
	TimeNS uint64 `json:"time_ns"`
}

// opLabel disambiguates the two opcodes that share the "br" mnemonic.
func opLabel(o ir.Op) string {
	if o == ir.OpCondBr {
		return "condbr"
	}
	return o.String()
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Snapshot freezes the collector into its exported profile. The
// collector remains usable; later snapshots see later state.
func (c *Collector) Snapshot() *Profile {
	c.mu.Lock()
	defer c.mu.Unlock()

	p := &Profile{Runs: c.runs, Experiments: len(c.marks)}
	var wall time.Duration
	if !c.t0.IsZero() {
		if n := len(c.marks); n > 0 {
			wall = c.marks[n-1]
		}
	}
	p.WallNS = int64(wall)
	if wall > 0 {
		p.ExpPerSec = float64(len(c.marks)) / wall.Seconds()
	}

	var totalNS uint64
	for op := 0; op < int(ir.NumOps); op++ {
		p.TotalDyn += c.count[op]
		p.TotalVector += c.vector[op]
		totalNS += c.timeNS[op]
	}
	for op := 0; op < int(ir.NumOps); op++ {
		if c.count[op] == 0 {
			continue
		}
		p.Ops = append(p.Ops, OpRow{
			Op:       opLabel(ir.Op(op)),
			Count:    c.count[op],
			Vector:   c.vector[op],
			TimeNS:   c.timeNS[op],
			CountPct: pct(c.count[op], p.TotalDyn),
			TimePct:  pct(c.timeNS[op], totalNS),
		})
	}
	sort.Slice(p.Ops, func(i, j int) bool {
		a, b := &p.Ops[i], &p.Ops[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Op < b.Op
	})

	for prev := 0; prev < int(ir.NumOps); prev++ {
		for next := 0; next < int(ir.NumOps); next++ {
			n := c.pairs[prev*int(ir.NumOps)+next]
			if n == 0 {
				continue
			}
			p.Pairs = append(p.Pairs, PairRow{
				First: opLabel(ir.Op(prev)), Second: opLabel(ir.Op(next)), Count: n,
			})
		}
	}
	sort.Slice(p.Pairs, func(i, j int) bool {
		a, b := &p.Pairs[i], &p.Pairs[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.First != b.First {
			return a.First < b.First
		}
		return a.Second < b.Second
	})
	if len(p.Pairs) > maxPairs {
		p.Pairs = p.Pairs[:maxPairs]
	}

	// Sites: fold phases together for the overall hot ranking; Stacks
	// keeps the per-phase split.
	merged := map[string]*SiteRow{}
	for _, name := range phaseNames(c.phases) {
		pa := c.phases[name]
		p.Phases = append(p.Phases, PhaseRow{
			Phase: name, WallNS: int64(pa.wall), Dyn: pa.dyn,
		})
		for _, key := range siteKeys(pa.sites) {
			s := pa.sites[key]
			p.Stacks = append(p.Stacks, StackRow{
				Phase: name, Func: s.id.fn, Block: s.id.block,
				Instr: s.id.instr, Count: s.count, TimeNS: s.ns,
			})
			m := merged[key]
			if m == nil {
				m = &SiteRow{Site: key}
				merged[key] = m
			}
			m.Count += s.count
			m.TimeNS += s.ns
		}
	}
	for _, m := range merged {
		p.Sites = append(p.Sites, *m)
	}
	sort.Slice(p.Sites, func(i, j int) bool {
		a, b := &p.Sites[i], &p.Sites[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Site < b.Site
	})
	if len(p.Sites) > maxSites {
		p.Sites = p.Sites[:maxSites]
	}

	p.Timeline = timeline(c.marks, wall)
	return p
}

// phaseNames orders recorded phases canonically, with any phase outside
// PhaseOrder appended alphabetically.
func phaseNames(phases map[string]*phaseAgg) []string {
	var names []string
	seen := map[string]bool{}
	for _, n := range PhaseOrder {
		if _, ok := phases[n]; ok {
			names = append(names, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range phases {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

func siteKeys(sites map[string]*siteAgg) []string {
	keys := make([]string, 0, len(sites))
	for k := range sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// timeline buckets completion marks into up to timelineCells equal
// wall-time cells.
func timeline(marks []time.Duration, wall time.Duration) []TimelineCell {
	if len(marks) == 0 || wall <= 0 {
		return nil
	}
	cells := timelineCells
	if len(marks) < cells {
		cells = len(marks)
	}
	width := wall / time.Duration(cells)
	if width <= 0 {
		width = 1
	}
	out := make([]TimelineCell, cells)
	for i := range out {
		out[i].OffsetNS = int64(width) * int64(i)
	}
	for _, m := range marks {
		i := int(m / width)
		if i >= cells {
			i = cells - 1
		}
		out[i].Experiments++
	}
	for i := range out {
		out[i].ExpPerSec = float64(out[i].Experiments) / width.Seconds()
	}
	return out
}
