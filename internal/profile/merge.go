package profile

import (
	"sort"
	"time"

	"vulfi/internal/trace"
)

// Merge folds per-shard profiles into one fleet-wide profile. The count
// fields compose exactly: Stacks carries every phase/site row uncapped,
// so summing Stacks by (phase, func, block, instr) and re-deriving
// Sites from the merged rows reproduces the single-node ranking — the
// merged per-opcode and per-site dynamic counts equal the sums of the
// shards' DynInstrs, which is the invariant fleet merges are tested
// against. Two classes of field are only approximate by nature:
//
//   - wall-time fields (WallNS, TimeNS, TimePct, ExpPerSec, Timeline):
//     shards run concurrently, so WallNS is the slowest shard's wall,
//     ExpPerSec is recomputed against it, and the throughput timeline is
//     re-bucketed from the shards' already-bucketed cells;
//   - Pairs: each shard caps its digram table before export, so the
//     merged ranking sums capped inputs (exact for digrams hot on every
//     shard, which is what the superinstruction list cares about).
//
// Nil parts are skipped; merging zero profiles returns nil.
func Merge(parts ...*Profile) *Profile {
	var in []*Profile
	for _, p := range parts {
		if p != nil {
			in = append(in, p)
		}
	}
	if len(in) == 0 {
		return nil
	}

	m := &Profile{}
	ops := map[string]*OpRow{}
	pairs := map[[2]string]uint64{}
	phases := map[string]*PhaseRow{}
	stacks := map[string]*StackRow{}
	var stackKeys []string
	for _, p := range in {
		m.Runs += p.Runs
		m.Experiments += p.Experiments
		m.TotalDyn += p.TotalDyn
		m.TotalVector += p.TotalVector
		if p.WallNS > m.WallNS {
			m.WallNS = p.WallNS
		}
		for i := range p.Ops {
			r := &p.Ops[i]
			o := ops[r.Op]
			if o == nil {
				o = &OpRow{Op: r.Op}
				ops[r.Op] = o
			}
			o.Count += r.Count
			o.Vector += r.Vector
			o.TimeNS += r.TimeNS
		}
		for _, r := range p.Pairs {
			pairs[[2]string{r.First, r.Second}] += r.Count
		}
		for _, r := range p.Phases {
			ph := phases[r.Phase]
			if ph == nil {
				ph = &PhaseRow{Phase: r.Phase}
				phases[r.Phase] = ph
			}
			ph.WallNS += r.WallNS
			ph.Dyn += r.Dyn
		}
		for i := range p.Stacks {
			r := &p.Stacks[i]
			key := r.Phase + "\x00" + trace.SiteKey(r.Func, r.Block, r.Instr)
			s := stacks[key]
			if s == nil {
				s = &StackRow{Phase: r.Phase, Func: r.Func, Block: r.Block, Instr: r.Instr}
				stacks[key] = s
				stackKeys = append(stackKeys, key)
			}
			s.Count += r.Count
			s.TimeNS += r.TimeNS
		}
	}
	if m.WallNS > 0 {
		m.ExpPerSec = float64(m.Experiments) / time.Duration(m.WallNS).Seconds()
	}

	var totalNS uint64
	for _, o := range ops {
		totalNS += o.TimeNS
	}
	for _, o := range ops {
		o.CountPct = pct(o.Count, m.TotalDyn)
		o.TimePct = pct(o.TimeNS, totalNS)
		m.Ops = append(m.Ops, *o)
	}
	sort.Slice(m.Ops, func(i, j int) bool {
		a, b := &m.Ops[i], &m.Ops[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Op < b.Op
	})

	for k, n := range pairs {
		m.Pairs = append(m.Pairs, PairRow{First: k[0], Second: k[1], Count: n})
	}
	sort.Slice(m.Pairs, func(i, j int) bool {
		a, b := &m.Pairs[i], &m.Pairs[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.First != b.First {
			return a.First < b.First
		}
		return a.Second < b.Second
	})
	if len(m.Pairs) > maxPairs {
		m.Pairs = m.Pairs[:maxPairs]
	}

	// Stacks in canonical order: phase presentation order, then site key —
	// the same order a single-node Snapshot emits.
	byPhase := map[string]*PhaseRow{}
	for n, ph := range phases {
		byPhase[n] = ph
	}
	for _, name := range mergedPhaseNames(byPhase) {
		m.Phases = append(m.Phases, *phases[name])
		var keys []string
		for _, k := range stackKeys {
			if s := stacks[k]; s.Phase == name {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			m.Stacks = append(m.Stacks, *stacks[k])
		}
	}

	// Sites re-derive from the merged (uncapped) stacks, exactly as
	// Snapshot derives them from the collector's phase tables.
	merged := map[string]*SiteRow{}
	var siteOrder []string
	for _, s := range m.Stacks {
		key := trace.SiteKey(s.Func, s.Block, s.Instr)
		r := merged[key]
		if r == nil {
			r = &SiteRow{Site: key}
			merged[key] = r
			siteOrder = append(siteOrder, key)
		}
		r.Count += s.Count
		r.TimeNS += s.TimeNS
	}
	for _, k := range siteOrder {
		m.Sites = append(m.Sites, *merged[k])
	}
	sort.Slice(m.Sites, func(i, j int) bool {
		a, b := &m.Sites[i], &m.Sites[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Site < b.Site
	})
	if len(m.Sites) > maxSites {
		m.Sites = m.Sites[:maxSites]
	}

	m.Timeline = mergeTimelines(in, m.WallNS)
	return m
}

// mergedPhaseNames orders phase rows canonically (PhaseOrder first, then
// extras alphabetically) — phaseNames for already-exported rows.
func mergedPhaseNames(phases map[string]*PhaseRow) []string {
	var names []string
	seen := map[string]bool{}
	for _, n := range PhaseOrder {
		if _, ok := phases[n]; ok {
			names = append(names, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range phases {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// mergeTimelines re-buckets the shards' throughput cells over the merged
// wall span. Each input cell's experiments land in the output cell its
// midpoint falls into — approximate (the shards already bucketed), but
// the total experiment count is preserved exactly.
func mergeTimelines(parts []*Profile, wallNS int64) []TimelineCell {
	if wallNS <= 0 {
		return nil
	}
	var total int
	for _, p := range parts {
		for _, c := range p.Timeline {
			total += c.Experiments
		}
	}
	if total == 0 {
		return nil
	}
	cells := timelineCells
	if total < cells {
		cells = total
	}
	width := wallNS / int64(cells)
	if width <= 0 {
		width = 1
	}
	out := make([]TimelineCell, cells)
	for i := range out {
		out[i].OffsetNS = width * int64(i)
	}
	for _, p := range parts {
		for ci, c := range p.Timeline {
			// Cell width of the source profile: distance to the next cell,
			// or to the profile's wall for the last one.
			end := p.WallNS
			if ci+1 < len(p.Timeline) {
				end = p.Timeline[ci+1].OffsetNS
			}
			mid := c.OffsetNS + (end-c.OffsetNS)/2
			i := int(mid / width)
			if i < 0 {
				i = 0
			}
			if i >= cells {
				i = cells - 1
			}
			out[i].Experiments += c.Experiments
		}
	}
	for i := range out {
		out[i].ExpPerSec = float64(out[i].Experiments) / (time.Duration(width).Seconds())
	}
	return out
}
