package profile

import (
	"testing"
)

// collect runs the sum workload once per entry of ns through one
// collector and returns its snapshot — the building block for the
// merge-of-split-equals-whole tests below.
func collect(t *testing.T, phase string, ns ...int64) *Profile {
	t.Helper()
	c := NewCollector()
	for _, n := range ns {
		probe := c.Probe()
		run(t, probe, n)
		c.Add(phase, probe)
		c.MarkExperiment()
	}
	return c.Snapshot()
}

// countFieldsEqual compares every exactly-composing field of two
// profiles: totals, the op ranking's counts, the re-derived site
// ranking, the uncapped stacks, and the phase dynamic counts. Wall-time
// fields are deliberately excluded — they are approximate by contract.
func countFieldsEqual(t *testing.T, got, want *Profile) {
	t.Helper()
	if got.Runs != want.Runs {
		t.Errorf("Runs = %d, want %d", got.Runs, want.Runs)
	}
	if got.Experiments != want.Experiments {
		t.Errorf("Experiments = %d, want %d", got.Experiments, want.Experiments)
	}
	if got.TotalDyn != want.TotalDyn {
		t.Errorf("TotalDyn = %d, want %d", got.TotalDyn, want.TotalDyn)
	}
	if got.TotalVector != want.TotalVector {
		t.Errorf("TotalVector = %d, want %d", got.TotalVector, want.TotalVector)
	}
	if len(got.Ops) != len(want.Ops) {
		t.Fatalf("op table: %d rows, want %d", len(got.Ops), len(want.Ops))
	}
	for i := range got.Ops {
		g, w := got.Ops[i], want.Ops[i]
		if g.Op != w.Op || g.Count != w.Count || g.Vector != w.Vector || g.CountPct != w.CountPct {
			t.Errorf("op row %d: %s count=%d vector=%d pct=%.2f, want %s count=%d vector=%d pct=%.2f",
				i, g.Op, g.Count, g.Vector, g.CountPct, w.Op, w.Count, w.Vector, w.CountPct)
		}
	}
	if len(got.Sites) != len(want.Sites) {
		t.Fatalf("site table: %d rows, want %d", len(got.Sites), len(want.Sites))
	}
	for i := range got.Sites {
		g, w := got.Sites[i], want.Sites[i]
		if g.Site != w.Site || g.Count != w.Count {
			t.Errorf("site row %d: %s count=%d, want %s count=%d",
				i, g.Site, g.Count, w.Site, w.Count)
		}
	}
	if len(got.Stacks) != len(want.Stacks) {
		t.Fatalf("stack table: %d rows, want %d", len(got.Stacks), len(want.Stacks))
	}
	for i := range got.Stacks {
		g, w := got.Stacks[i], want.Stacks[i]
		if g.Phase != w.Phase || g.Func != w.Func || g.Block != w.Block ||
			g.Instr != w.Instr || g.Count != w.Count {
			t.Errorf("stack row %d: %+v counts differ from %+v", i, g, w)
		}
	}
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("phase table: %d rows, want %d", len(got.Phases), len(want.Phases))
	}
	for i := range got.Phases {
		if got.Phases[i].Phase != want.Phases[i].Phase || got.Phases[i].Dyn != want.Phases[i].Dyn {
			t.Errorf("phase row %d: %s dyn=%d, want %s dyn=%d",
				i, got.Phases[i].Phase, got.Phases[i].Dyn,
				want.Phases[i].Phase, want.Phases[i].Dyn)
		}
	}
}

// TestMergeOfSplitEqualsWhole is the fleet-observatory acceptance
// invariant at unit scope: splitting a workload across shards and
// merging the shard profiles reproduces the single-node profile on
// every count field — per-opcode counts, vector tallies, hot sites,
// folded stacks, phase dyn totals, and the grand totals themselves.
func TestMergeOfSplitEqualsWhole(t *testing.T) {
	whole := collect(t, "golden", 3, 7, 11, 2)
	a := collect(t, "golden", 3, 7)
	b := collect(t, "golden", 11, 2)
	merged := Merge(a, b)
	if merged == nil {
		t.Fatal("merge of two parts returned nil")
	}
	countFieldsEqual(t, merged, whole)
}

// TestMergeOrderIndependent: shards harvest in coordinator-scheduling
// order, which is nondeterministic, so the merge must not care.
func TestMergeOrderIndependent(t *testing.T) {
	a := collect(t, "golden", 5)
	b := collect(t, "golden", 9, 2)
	c := collect(t, "faulty", 4)
	x, y := Merge(a, b, c), Merge(c, b, a)
	countFieldsEqual(t, x, y)
}

// TestMergeTotalsInvariant: the merged op table must still sum to the
// merged TotalDyn — the DynInstrs accounting identity every profile
// view is checked against, preserved because Merge sums both sides
// from the same rows.
func TestMergeTotalsInvariant(t *testing.T) {
	a, b := collect(t, "golden", 6), collect(t, "golden", 13, 1)
	m := Merge(a, b)
	var opSum, stackSum, siteSum uint64
	for _, o := range m.Ops {
		opSum += o.Count
	}
	for _, s := range m.Stacks {
		stackSum += s.Count
	}
	for _, s := range m.Sites {
		siteSum += s.Count
	}
	if opSum != m.TotalDyn {
		t.Errorf("op counts sum to %d, want TotalDyn %d", opSum, m.TotalDyn)
	}
	if stackSum != m.TotalDyn {
		t.Errorf("stack counts sum to %d, want TotalDyn %d", stackSum, m.TotalDyn)
	}
	// Sites are capped at maxSites; with one test function they are not,
	// so the identity holds here too.
	if len(m.Sites) < maxSites && siteSum != m.TotalDyn {
		t.Errorf("site counts sum to %d, want TotalDyn %d", siteSum, m.TotalDyn)
	}
	// Re-bucketing conserves the cell population: every input cell lands
	// in exactly one output cell (experiments a part never bucketed —
	// e.g. a zero-wall shard — are out of scope by construction).
	var expSum, inSum int
	for _, cell := range m.Timeline {
		expSum += cell.Experiments
	}
	for _, p := range []*Profile{a, b} {
		for _, cell := range p.Timeline {
			inSum += cell.Experiments
		}
	}
	if len(m.Timeline) > 0 && expSum != inSum {
		t.Errorf("timeline cells sum to %d experiments, inputs carried %d", expSum, inSum)
	}
}

// TestMergeNilHandling: nil parts are skipped (a shard whose worker
// died before observability harvest contributes nothing), and merging
// nothing yields nil rather than an empty profile.
func TestMergeNilHandling(t *testing.T) {
	if Merge() != nil {
		t.Error("Merge() != nil")
	}
	if Merge(nil, nil) != nil {
		t.Error("Merge(nil, nil) != nil")
	}
	p := collect(t, "golden", 4)
	m := Merge(nil, p, nil)
	if m == nil {
		t.Fatal("merge with nil padding returned nil")
	}
	countFieldsEqual(t, m, p)
}

// TestMergeDistinctPhases: a phase present on only one shard (e.g. a
// cache-fill that happened on shard 0 alone) survives the merge in
// canonical phase order.
func TestMergeDistinctPhases(t *testing.T) {
	m := Merge(collect(t, "golden", 3), collect(t, "faulty", 5))
	var names []string
	for _, ph := range m.Phases {
		names = append(names, ph.Phase)
	}
	if len(names) != 2 || names[0] != "golden" || names[1] != "faulty" {
		t.Fatalf("merged phases %v, want [golden faulty] (PhaseOrder)", names)
	}
	// Stacks group by phase in the same order.
	seenFaulty := false
	for _, s := range m.Stacks {
		if s.Phase == "faulty" {
			seenFaulty = true
		} else if seenFaulty {
			t.Fatalf("stack rows interleave phases: %q after faulty", s.Phase)
		}
	}
}
