package profile

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// buildSum constructs the canonical scalar loop-sum test function:
// sum(a *i32, n i32) iterates n loads and adds.
func buildSum(m *ir.Module) *ir.Func {
	f := ir.NewFunc("sum", ir.I32, []*ir.Type{ir.Ptr(ir.I32), ir.I32},
		[]string{"a", "n"})
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	b := ir.NewBuilder(entry)
	b.Br(loop)

	b.SetBlock(loop)
	i := b.Phi(ir.I32, "i")
	s := b.Phi(ir.I32, "s")
	cond := b.ICmp(ir.IntSLT, i, f.Params[1], "cond")
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	p := b.GEP(f.Params[0], i, "p")
	v := b.Load(p, "v")
	s2 := b.Add(s, v, "s2")
	i2 := b.Add(i, ir.ConstInt(ir.I32, 1), "i2")
	b.Br(loop)

	ir.AddIncoming(i, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(s, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(s, s2, body)

	b.SetBlock(exit)
	b.Ret(s)
	return f
}

// run executes sum(a, n) on a fresh interpreter with the probe attached
// and returns the interpreter for counter comparison.
func run(t *testing.T, probe *Probe, n int64) *interp.Interp {
	t.Helper()
	m := ir.NewModule("t")
	buildSum(m)
	it, err := interp.New(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	it.SetProfiler(probe)
	addr, tr := it.Mem.Alloc(uint64(n) * 4)
	if tr != nil {
		t.Fatal(tr)
	}
	if _, tr := it.Run("sum", interp.PtrValue(ir.Ptr(ir.I32), addr),
		interp.IntValue(ir.I32, n)); tr != nil {
		t.Fatal(tr)
	}
	return it
}

// TestProbeTotalEqualsDynInstrs is the acceptance criterion at its
// root: the probe hangs off the same account() call that increments
// DynInstrs, so their totals are structurally equal — phis, terminators
// and void instructions included.
func TestProbeTotalEqualsDynInstrs(t *testing.T) {
	probe := NewProbe()
	it := run(t, probe, 25)
	probe.Finish()
	if probe.Total() != it.DynInstrs {
		t.Fatalf("probe total %d, interpreter DynInstrs %d",
			probe.Total(), it.DynInstrs)
	}
	if probe.Total() == 0 {
		t.Fatal("probe counted nothing")
	}
}

// TestAccountFusedMatchesSequential: the vm backend's fused
// superinstructions report their constituents through AccountFused, and
// every pure-count table — opcode counts, vector tallies, per-site
// counts, the digram miner, Total — must land exactly where a sequence
// of plain Account calls would have put it. Wall time must be conserved
// (total ns equals the per-site sum) with every constituent of a fused
// group receiving a share.
func TestAccountFusedMatchesSequential(t *testing.T) {
	m := ir.NewModule("t")
	f := buildSum(m)
	var ins []*ir.Instr
	for _, blk := range f.Blocks {
		ins = append(ins, blk.Instrs...)
	}

	seq, fus := NewProbe(), NewProbe()
	for _, in := range ins {
		seq.Account(in)
	}
	seq.Finish()

	// Group the same adjacent patterns the vm backend fuses (gep+load,
	// cmp+br); account everything else singly.
	for i := 0; i < len(ins); {
		fusible := i+1 < len(ins) &&
			((ins[i].Op == ir.OpGEP && ins[i+1].Op == ir.OpLoad) ||
				(ins[i].Op == ir.OpICmp && ins[i+1].Op == ir.OpCondBr))
		if fusible {
			fus.AccountFused(ins[i : i+2])
			i += 2
		} else {
			fus.Account(ins[i])
			i++
		}
	}
	fus.Finish()

	if seq.total != fus.total {
		t.Fatalf("total: sequential %d, fused %d", seq.total, fus.total)
	}
	if seq.count != fus.count {
		t.Fatalf("opcode counts diverge:\nseq   %v\nfused %v", seq.count, fus.count)
	}
	if seq.vector != fus.vector {
		t.Fatalf("vector counts diverge")
	}
	if seq.pairs != fus.pairs {
		for p := range seq.pairs {
			if seq.pairs[p] != fus.pairs[p] {
				t.Errorf("pair (%v,%v): sequential %d, fused %d",
					ir.Op(p/int(ir.NumOps)), ir.Op(p%int(ir.NumOps)),
					seq.pairs[p], fus.pairs[p])
			}
		}
		t.Fatal("digram table diverges")
	}
	if len(seq.siteCount) != len(fus.siteCount) {
		t.Fatalf("site count table size: sequential %d, fused %d",
			len(seq.siteCount), len(fus.siteCount))
	}
	for in, n := range seq.siteCount {
		if fus.siteCount[in] != n {
			t.Fatalf("site %%%s count: sequential %d, fused %d", in.Nam, n, fus.siteCount[in])
		}
	}

	var totalNS, siteNS uint64
	for _, d := range fus.timeNS {
		totalNS += d
	}
	for _, d := range fus.siteNS {
		siteNS += d
	}
	if totalNS != siteNS {
		t.Fatalf("fused wall time not conserved: opcode total %dns, site total %dns",
			totalNS, siteNS)
	}
}

// TestAccountFusedSplitsInterval: the interval following a fused group
// is split across its constituents — the gep inside a fused gep+load
// still shows up in the time profile instead of donating all its wall
// time to the load.
func TestAccountFusedSplitsInterval(t *testing.T) {
	m := ir.NewModule("t")
	f := buildSum(m)
	var gep, load *ir.Instr
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.OpGEP:
				gep = in
			case ir.OpLoad:
				load = in
			}
		}
	}
	if gep == nil || load == nil {
		t.Fatal("test function lost its gep/load pair")
	}

	p := NewProbe()
	p.AccountFused([]*ir.Instr{gep, load})
	time.Sleep(2 * time.Millisecond) // the fused step "executes"
	p.Finish()

	if p.siteNS[gep] == 0 || p.siteNS[load] == 0 {
		t.Fatalf("interval not split: gep %dns, load %dns",
			p.siteNS[gep], p.siteNS[load])
	}
	if got, want := p.siteNS[gep]+p.siteNS[load], p.timeNS[ir.OpGEP]+p.timeNS[ir.OpLoad]; got != want {
		t.Fatalf("split loses time: sites %dns, opcodes %dns", got, want)
	}
}

// TestCollectorSnapshot checks the aggregate profile: totals, the
// trace.SiteKey spelling of hot sites, opcode-pair mining, and the
// deterministic ordering of every ranked table.
func TestCollectorSnapshot(t *testing.T) {
	c := NewCollector()
	probe := c.Probe()
	it := run(t, probe, 10)
	want := it.DynInstrs
	c.Add("golden", probe)

	p := c.Snapshot()
	if p.TotalDyn != want {
		t.Fatalf("TotalDyn = %d, want %d", p.TotalDyn, want)
	}
	if p.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", p.Runs)
	}
	var opSum uint64
	for _, o := range p.Ops {
		opSum += o.Count
	}
	if opSum != p.TotalDyn {
		t.Fatalf("op table sums to %d, want %d", opSum, p.TotalDyn)
	}
	for i := 1; i < len(p.Ops); i++ {
		if p.Ops[i].Count > p.Ops[i-1].Count {
			t.Fatalf("op table not ranked: %v before %v", p.Ops[i-1], p.Ops[i])
		}
	}
	if len(p.Sites) == 0 {
		t.Fatal("no hot sites")
	}
	for _, s := range p.Sites {
		if !strings.HasPrefix(s.Site, "@sum/") {
			t.Fatalf("site %q does not use the trace.SiteKey spelling", s.Site)
		}
	}
	if len(p.Pairs) == 0 {
		t.Fatal("no opcode pairs mined")
	}
	// Every accounted instruction except the first opens a digram.
	var pairSum uint64
	cc := NewCollector()
	p2 := cc.Probe()
	run(t, p2, 10)
	cc.Add("golden", p2)
	for _, pr := range cc.Snapshot().Pairs {
		pairSum += pr.Count
	}
	if len(p.Pairs) < maxPairs && pairSum != want-1 {
		t.Fatalf("pair counts sum to %d, want %d", pairSum, want-1)
	}
	// A loop of 10 iterations must rank the loop-header comparison hot.
	if p.Sites[0].Count < 10 {
		t.Fatalf("hottest site count %d, want >= 10", p.Sites[0].Count)
	}
}

// TestCollectorDeterministicAcrossMergeOrder: the same probes merged in
// any order (as concurrent campaign workers would) produce identical
// count data.
func TestCollectorDeterministicAcrossMergeOrder(t *testing.T) {
	snapshot := func(order []int64) *Profile {
		c := NewCollector()
		var wg sync.WaitGroup
		for _, n := range order {
			wg.Add(1)
			go func(n int64) {
				defer wg.Done()
				probe := c.Probe()
				run(t, probe, n)
				c.Add("golden", probe)
			}(n)
		}
		wg.Wait()
		return c.Snapshot()
	}
	a := snapshot([]int64{3, 7, 11, 2})
	b := snapshot([]int64{11, 2, 3, 7})
	if a.TotalDyn != b.TotalDyn {
		t.Fatalf("TotalDyn %d vs %d", a.TotalDyn, b.TotalDyn)
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op tables differ: %d vs %d rows", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i].Op != b.Ops[i].Op || a.Ops[i].Count != b.Ops[i].Count {
			t.Fatalf("op row %d differs: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
	for i := range a.Sites {
		if a.Sites[i].Site != b.Sites[i].Site || a.Sites[i].Count != b.Sites[i].Count {
			t.Fatalf("site row %d differs: %+v vs %+v", i, a.Sites[i], b.Sites[i])
		}
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair row %d differs: %+v vs %+v", i, a.Pairs[i], b.Pairs[i])
		}
	}
}

// TestWriteFolded: the folded output is one "frames value" line per
// stack, frames semicolon-separated, values summing to the profile
// total, no frame ever split by stray separators.
func TestWriteFolded(t *testing.T) {
	c := NewCollector()
	probe := c.Probe()
	run(t, probe, 10)
	c.Add("golden", probe)
	p := c.Snapshot()

	var buf bytes.Buffer
	if err := WriteFolded(&buf, p); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty folded output")
	}
	var sum uint64
	for _, line := range lines {
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		frames := strings.Split(line[:sp], ";")
		if len(frames) != 4 {
			t.Fatalf("want 4 frames (phase;func;block;instr), got %d in %q",
				len(frames), line)
		}
		if frames[0] != "golden" {
			t.Fatalf("root frame %q, want phase name", frames[0])
		}
		n, err := strconv.ParseUint(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("value in %q: %v", line, err)
		}
		sum += n
	}
	if sum != p.TotalDyn {
		t.Fatalf("folded values sum to %d, want %d", sum, p.TotalDyn)
	}
}

// TestFrameSanitizer: separators inside instruction text must never
// split a frame.
func TestFrameSanitizer(t *testing.T) {
	if got := frame("a;b\nc"); strings.ContainsAny(got, ";\n") {
		t.Fatalf("frame(%q) = %q still contains separators", "a;b\nc", got)
	}
	if got := frame(""); got != "?" {
		t.Fatalf("empty frame = %q, want ?", got)
	}
}

// TestWriteFlameHTML: the page is self-contained and carries the
// profile data inline.
func TestWriteFlameHTML(t *testing.T) {
	c := NewCollector()
	probe := c.Probe()
	run(t, probe, 10)
	c.Add("golden", probe)
	p := c.Snapshot()

	var buf bytes.Buffer
	if err := p.WriteFlameHTML(&buf, "sum/TEST/unit"); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "sum/TEST/unit", `"total_dyn"`, `"stacks"`,
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("flame HTML missing %q", want)
		}
	}
	if strings.Contains(html, "src=") || strings.Contains(html, "href=") {
		t.Fatal("flame HTML references external assets")
	}
}

// TestTimeline: marks bucket into cells that conserve the experiment
// count, and the phase wall breakdown accumulates.
func TestTimeline(t *testing.T) {
	c := NewCollector()
	c.StartTimeline(time.Now())
	for i := 0; i < 50; i++ {
		c.MarkExperiment()
	}
	c.Phase("compare", 1000)
	c.Phase("compare", 500)
	p := c.Snapshot()
	if p.Experiments != 50 {
		t.Fatalf("Experiments = %d, want 50", p.Experiments)
	}
	var n int
	for _, cell := range p.Timeline {
		n += cell.Experiments
	}
	if len(p.Timeline) > 0 && n != 50 {
		t.Fatalf("timeline cells sum to %d, want 50", n)
	}
	for _, ph := range p.Phases {
		if ph.Phase == "compare" && ph.WallNS != 1500 {
			t.Fatalf("compare wall = %d, want 1500", ph.WallNS)
		}
	}
}
