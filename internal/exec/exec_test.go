package exec

import (
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
)

const incSrc = `
export void inc(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		a[i] = a[i] + 1.0;
	}
}
`

func TestAllocReadRoundtrip(t *testing.T) {
	res, err := codegen.CompileSource(incSrc, isa.SSE, "inc")
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewInstance(res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs := []float32{1.5, -2.25, 0, 1e10}
	fa, err := x.AllocF32(fs)
	if err != nil {
		t.Fatal(err)
	}
	gotF, err := x.ReadF32(fa, len(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if gotF[i] != fs[i] {
			t.Fatalf("f32[%d] = %v, want %v", i, gotF[i], fs[i])
		}
	}
	is := []int32{-1, 0, 1 << 30}
	ia, err := x.AllocI32(is)
	if err != nil {
		t.Fatal(err)
	}
	gotI, err := x.ReadI32(ia, len(is))
	if err != nil {
		t.Fatal(err)
	}
	for i := range is {
		if gotI[i] != is[i] {
			t.Fatalf("i32[%d] = %v, want %v", i, gotI[i], is[i])
		}
	}
	raw, err := x.ReadRaw(ia, 4)
	if err != nil || raw[0] != 0xFF {
		t.Fatalf("raw read: %v %v", raw, err)
	}
}

func TestCallExportAppendsMask(t *testing.T) {
	res, err := codegen.CompileSource(incSrc, isa.SSE, "inc")
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewInstance(res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := []float32{1, 2, 3, 4, 5}
	a, _ := x.AllocF32(in)
	// Only the declared VSPC args; the all-on mask is implicit.
	if _, tr := x.CallExport("inc", PtrArgF32(a), I32Arg(5)); tr != nil {
		t.Fatal(tr)
	}
	got, _ := x.ReadF32(a, 5)
	for i := range in {
		if got[i] != in[i]+1 {
			t.Fatalf("a[%d] = %v", i, got[i])
		}
	}
	// The mask value itself: all lanes on at SSE gang size 4.
	m := x.AllOnMask()
	if m.Lanes() != 4 {
		t.Fatalf("mask lanes = %d", m.Lanes())
	}
	for _, b := range m.Bits {
		if b != 1 {
			t.Fatal("mask lane off")
		}
	}
}

func TestCallExportUnknownName(t *testing.T) {
	res, err := codegen.CompileSource(incSrc, isa.SSE, "inc")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := NewInstance(res, interp.Options{})
	if _, tr := x.CallExport("nope"); tr == nil {
		t.Fatal("unknown export should trap")
	}
}
