package exec

import (
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
)

// TestResetDeterminism: a reset instance must behave exactly like a
// fresh one — same allocation addresses, same outputs, same dynamic
// instruction counts — because the campaign engine recycles instances
// across experiments and its results must not depend on reuse.
func TestResetDeterminism(t *testing.T) {
	res, err := codegen.CompileSource(incSrc, isa.SSE, "inc")
	if err != nil {
		t.Fatal(err)
	}

	type run struct {
		addr  uint64
		out   []float32
		insts uint64
	}
	oneRun := func(x *Instance) run {
		t.Helper()
		fa, err := x.AllocF32([]float32{1, 2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, tr := x.CallExport("inc", PtrArgF32(fa), I32Arg(4)); tr != nil {
			t.Fatal(tr)
		}
		out, err := x.ReadF32(fa, 4)
		if err != nil {
			t.Fatal(err)
		}
		return run{addr: fa, out: out, insts: x.It.DynInstrs}
	}

	x, err := NewInstance(res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := oneRun(x)

	if err := x.Reset(interp.Options{}); err != nil {
		t.Fatal(err)
	}
	second := oneRun(x)

	fresh, err := NewInstance(res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	third := oneRun(fresh)

	for i, r := range []run{second, third} {
		if r.addr != first.addr {
			t.Fatalf("run %d alloc address %#x, want %#x", i, r.addr, first.addr)
		}
		if r.insts != first.insts {
			t.Fatalf("run %d retired %d instructions, want %d", i, r.insts, first.insts)
		}
		for j := range r.out {
			if r.out[j] != first.out[j] {
				t.Fatalf("run %d out[%d] = %v, want %v", i, j, r.out[j], first.out[j])
			}
		}
	}
}

// TestResetZeroesRecycledMemory: buffers recycled through the memory
// free list must come back zeroed, or a reset instance could read stale
// bytes from the previous experiment.
func TestResetZeroesRecycledMemory(t *testing.T) {
	res, err := codegen.CompileSource(incSrc, isa.SSE, "inc")
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewInstance(res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := x.AllocF32([]float32{9, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Reset(interp.Options{}); err != nil {
		t.Fatal(err)
	}
	// The same-size allocation reuses the recycled buffer (and, by the
	// deterministic address sequence, the same address).
	fb, tr := x.It.Mem.Alloc(16)
	if tr != nil {
		t.Fatal(tr)
	}
	if fb != fa {
		t.Fatalf("recycled allocation at %#x, want %#x", fb, fa)
	}
	got, err := x.ReadF32(fb, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("recycled[%d] = %v, want zero", i, v)
		}
	}
}
