// Package exec glues compiled VSPC modules to the interpreter: it creates
// interpreter instances with the ISA intrinsics bound, marshals Go slices
// in and out of simulated memory, and calls export functions with the
// implicit all-on execution mask.
package exec

import (
	"fmt"
	"math"

	"vulfi/internal/codegen"
	"vulfi/internal/interp"
	"vulfi/internal/ir"
	"vulfi/internal/isa"
)

// Instance is one executable instantiation of a compiled module.
type Instance struct {
	It  *interp.Interp
	Res *codegen.Result
}

// NewInstance creates an interpreter for the compiled module with all ISA
// intrinsics bound.
func NewInstance(res *codegen.Result, opts interp.Options) (*Instance, error) {
	it, err := interp.New(res.Module, opts)
	if err != nil {
		return nil, err
	}
	isa.Bind(it)
	return &Instance{It: it, Res: res}, nil
}

// Reset returns the instance to its post-NewInstance state under new
// interpreter options: fresh memory image and counters, globals at
// identical addresses, ISA intrinsics still bound. Campaign hot paths
// reset-and-reuse instances instead of building one per run.
func (x *Instance) Reset(opts interp.Options) error {
	if tr := x.It.Reset(opts); tr != nil {
		return tr
	}
	return nil
}

// AllocF32 copies data into a fresh memory segment of float32 cells.
func (x *Instance) AllocF32(data []float32) (uint64, error) {
	addr, tr := x.It.Mem.Alloc(uint64(4 * len(data)))
	if tr != nil {
		return 0, tr
	}
	for i, v := range data {
		fv := interp.FloatValue(ir.F32, float64(v))
		if tr := x.It.Mem.StoreScalar(ir.F32, addr+uint64(i)*4, fv.Uint()); tr != nil {
			return 0, tr
		}
	}
	return addr, nil
}

// AllocI32 copies data into a fresh memory segment of int32 cells.
func (x *Instance) AllocI32(data []int32) (uint64, error) {
	addr, tr := x.It.Mem.Alloc(uint64(4 * len(data)))
	if tr != nil {
		return 0, tr
	}
	for i, v := range data {
		if tr := x.It.Mem.StoreScalar(ir.I32, addr+uint64(i)*4,
			uint64(uint32(v))); tr != nil {
			return 0, tr
		}
	}
	return addr, nil
}

// ReadF32 copies n float32 cells back out of memory.
func (x *Instance) ReadF32(addr uint64, n int) ([]float32, error) {
	out := make([]float32, n)
	for i := range out {
		bits, tr := x.It.Mem.LoadScalar(ir.F32, addr+uint64(i)*4)
		if tr != nil {
			return nil, tr
		}
		out[i] = float32frombits(uint32(bits))
	}
	return out, nil
}

// ReadI32 copies n int32 cells back out of memory.
func (x *Instance) ReadI32(addr uint64, n int) ([]int32, error) {
	out := make([]int32, n)
	for i := range out {
		bits, tr := x.It.Mem.LoadScalar(ir.I32, addr+uint64(i)*4)
		if tr != nil {
			return nil, tr
		}
		out[i] = int32(uint32(bits))
	}
	return out, nil
}

// ReadRaw copies size bytes starting at addr (outcome comparison).
func (x *Instance) ReadRaw(addr, size uint64) ([]byte, error) {
	b, tr := x.It.Mem.ReadBytes(addr, size)
	if tr != nil {
		return nil, tr
	}
	return b, nil
}

// AllOnMask returns the all-lanes-on execution mask value.
func (x *Instance) AllOnMask() interp.Value {
	return interp.ConstValue(ir.ConstSplat(x.Res.VL, ir.ConstBool(true)))
}

// CallExport invokes an export function, appending the implicit all-on
// execution mask argument.
func (x *Instance) CallExport(name string, args ...interp.Value) (interp.Value, *interp.Trap) {
	f := x.Res.Module.Func(name)
	if f == nil {
		return interp.Value{}, &interp.Trap{Kind: interp.TrapHalt,
			Msg: fmt.Sprintf("no export %q", name)}
	}
	full := append(append([]interp.Value{}, args...), x.AllOnMask())
	return x.It.Call(f, full)
}

// I32Arg builds a scalar i32 argument.
func I32Arg(v int64) interp.Value { return interp.IntValue(ir.I32, v) }

// F32Arg builds a scalar float argument.
func F32Arg(v float64) interp.Value { return interp.FloatValue(ir.F32, v) }

// PtrArgF32 builds a float* argument.
func PtrArgF32(addr uint64) interp.Value {
	return interp.PtrValue(ir.Ptr(ir.F32), addr)
}

// PtrArgI32 builds an int* argument.
func PtrArgI32(addr uint64) interp.Value {
	return interp.PtrValue(ir.Ptr(ir.I32), addr)
}

func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
