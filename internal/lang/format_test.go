package lang

import (
	"strings"
	"testing"
)

func TestFormatFixpoint(t *testing.T) {
	src := `
export void f(uniform float a[], uniform int n, uniform float s) {
	uniform int k = 3;
	foreach (i = 0 ... n - 1) {
		varying float v = a[i] * s + (float)i;
		if (v < 0.0) {
			v = -v;
		} else {
			while (v > 10.0) {
				v = v / 2.0;
			}
		}
		a[i] = v;
	}
	for (uniform int j = 0; j < k; j++) {
		print(j);
	}
	return;
}`
	f1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	once := Format(f1)
	f2, err := Parse(once)
	if err != nil {
		t.Fatalf("formatted source does not parse: %v\n%s", err, once)
	}
	twice := Format(f2)
	if once != twice {
		t.Fatalf("Format is not a fixpoint:\n--- once\n%s\n--- twice\n%s", once, twice)
	}
}

func TestFormatPreservesPrecedence(t *testing.T) {
	src := `void f() { int x = 1 + 2 * 3 - (4 + 5) * 6; }`
	f1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f1)
	// The formatter parenthesizes every binary op; the re-parsed tree
	// must compute the same constant structure.
	if !strings.Contains(out, "((1 + (2 * 3)) - ((4 + 5) * 6))") {
		t.Fatalf("precedence flattened:\n%s", out)
	}
}

func TestExprStringForms(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"a[i + 1]", "a[(i + 1)]"},
		{"-x", "-x"},
		{"!b", "!b"},
		{"sqrt(x)", "sqrt(x)"},
		{"(float)n", "(float)n"},
		{"(uniform int)y", "(uniform int)y"},
		{"1.0", "1.0"},
		{"1.5e10", "1.5e+10"},
		{"true", "true"},
	}
	for _, c := range cases {
		f, err := Parse("void f() { x = " + c.src + "; }")
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
		if got := ExprString(as.RHS); got != c.want {
			t.Errorf("ExprString(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}
