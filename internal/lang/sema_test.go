package lang

import (
	"strings"
	"testing"
)

func checkOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	return p
}

func checkErr(t *testing.T, src, frag string) {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("expected error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

func TestSemaUniformityPropagation(t *testing.T) {
	p := checkOK(t, `
export void f(uniform float a[], uniform int n) {
	uniform float u = 1.0;
	foreach (i = 0 ... n) {
		varying float v = a[i] + u;
		a[i] = v;
	}
}`)
	// Find the v declaration's initializer type.
	for decl, sym := range p.DeclSyms {
		if sym.Name == "v" {
			ty := p.Types[decl.Init]
			if ty.Uniform {
				t.Error("a[i] + u should be varying")
			}
		}
		if sym.Name == "u" && !sym.Type.Uniform {
			t.Error("u should be uniform")
		}
	}
}

func TestSemaVaryingToUniformRejected(t *testing.T) {
	checkErr(t, `
export void f(uniform int n) {
	varying int v = 1;
	uniform int u = v;
}`, "cannot use")
}

func TestSemaForeachRules(t *testing.T) {
	checkErr(t, `
export void f(uniform int n) {
	varying int m = n;
	foreach (i = 0 ... m) { }
}`, "foreach bound must be uniform int")

	checkErr(t, `
export void f(uniform int n) {
	foreach (i = 0 ... n) {
		foreach (j = 0 ... n) { }
	}
}`, "varying control flow")

	checkErr(t, `
export void f(uniform int n) {
	foreach (i = 0 ... n) {
		i = 3;
	}
}`, "induction variable")
}

func TestSemaUniformAssignUnderMask(t *testing.T) {
	// Assigning a uniform declared OUTSIDE the foreach is an error...
	checkErr(t, `
export void f(uniform int n) {
	uniform int acc = 0;
	foreach (i = 0 ... n) {
		acc = acc + 1;
	}
}`, "under varying control flow")

	// ...but a uniform loop counter declared INSIDE is lane-uniform and fine.
	checkOK(t, `
export void f(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		varying float s = 0.0;
		for (uniform int k = 0; k < 3; k++) {
			s += a[i];
		}
		a[i] = s;
	}
}`)

	// A uniform declared inside a varying if may not be assigned under a
	// DEEPER varying construct.
	checkErr(t, `
export void f(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		uniform int k = 0;
		if (a[i] > 0.0) {
			k = 1;
		}
	}
}`, "under varying control flow")
}

func TestSemaReturnRules(t *testing.T) {
	checkErr(t, `
export int f(uniform int n) {
	foreach (i = 0 ... n) {
		return 1;
	}
	return 0;
}`, "return under varying control flow")

	checkErr(t, `export void f() { return 1; }`, "return with value in void")
	checkErr(t, `export uniform int f() { return; }`, "missing return value")
}

func TestSemaConditionTypes(t *testing.T) {
	checkErr(t, `export void f(uniform int n) { if (n) { } }`,
		"must be bool")
	checkErr(t, `export void f(uniform int n) { while (n + 1) { } }`,
		"must be bool")
	checkErr(t, `
export void f(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		varying bool c = a[i] > 0.0;
		for (uniform int k = 0; c; k++) { }
	}
}`, "for condition must be uniform bool")
}

func TestSemaArrays(t *testing.T) {
	checkErr(t, `export void f(varying int a[]) { }`, "must be uniform")
	checkErr(t, `export void f(uniform int a[]) { a = a; }`, "cannot assign to array")
	checkErr(t, `export void f(uniform int n) { n[0] = 1; }`, "indexing non-array")
	checkErr(t, `export void f(uniform float a[]) { a[1.5] = 0.0; }`,
		"index must be an integer")
	checkOK(t, `export void f() { uniform float tmp[8]; tmp[3] = 1.0; }`)
	checkErr(t, `export void f() { uniform float tmp[0]; }`, "positive length")
}

func TestSemaStoreToUniformLocationUnderMask(t *testing.T) {
	checkErr(t, `
export void f(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		a[0] = 1.0;
	}
}`, "store to uniform array location")
}

func TestSemaCalls(t *testing.T) {
	checkErr(t, `export void f() { g(); }`, "undefined function")
	checkErr(t, `
float g(varying float x) { return x; }
export void f() { g(1.0, 2.0); }`, "2 args, want 1")
	checkErr(t, `
void g(uniform int x) { }
export void f(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		g(a[i]);
	}
}`, "cannot use")
	// Implicit broadcast of a uniform argument to a varying parameter.
	checkOK(t, `
float g(varying float x) { return x + 1.0; }
export void f(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		a[i] = g(3.0);
	}
}`)
}

func TestSemaBuiltins(t *testing.T) {
	checkErr(t, `export void f() { uniform float x = sqrt(1.0, 2.0); }`,
		"expects 1 argument")
	checkErr(t, `export void f() { varying float r = reduce_add(1.0); }`,
		"requires a varying argument")
	checkErr(t, `
export void f(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		uniform float s = reduce_add(a[i]);
	}
}`, "outside varying control flow")
	p := checkOK(t, `
export void f(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		a[i] = select(a[i] > 0.0, a[i], 0.0 - a[i]);
	}
	varying int pi = programIndex();
	uniform int pc = programCount();
	print(pc);
}`)
	_ = p
}

func TestSemaDuplicatesAndUndefined(t *testing.T) {
	checkErr(t, `void f() { } void f() { }`, "duplicate function")
	checkErr(t, `void f() { int x = 1; int x = 2; }`, "redeclaration")
	checkErr(t, `void f() { int x = y; }`, "undefined")
	// Shadowing in an inner scope is allowed.
	checkOK(t, `void f() { int x = 1; { int y = x; } int y = 2; }`)
}

func TestSemaNumericPromotion(t *testing.T) {
	p := checkOK(t, `
export void f(uniform float a[], uniform int n) {
	uniform int i = 3;
	uniform float x = i + 1.5;
	uniform int64 big = i * 10;
	uniform double d = x;
	a[0] = (float)d;
}`)
	for decl, sym := range p.DeclSyms {
		switch sym.Name {
		case "x":
			if ty := p.Types[decl.Init]; ty.Base != TFloat {
				t.Errorf("i + 1.5 should be float, got %s", ty)
			}
		case "big":
			// i * 10 stays int; the declaration widens it to int64.
			if ty := p.Types[decl.Init]; ty.Base != TInt {
				t.Errorf("i * 10 should be int before widening, got %s", ty)
			}
			if sym.Type.Base != TInt64 {
				t.Errorf("big should be int64, got %s", sym.Type)
			}
		}
	}
}

func TestSemaBoolOps(t *testing.T) {
	checkErr(t, `export void f(uniform int n) { uniform int x = n + true; }`,
		"arithmetic requires numeric")
	checkErr(t, `export void f(uniform int n) { uniform bool b = n && true; }`,
		"logical op requires bool")
	checkOK(t, `
export void f(uniform int n) {
	uniform bool b = n > 0 && n < 10 || !(n == 5);
	if (b) { }
}`)
}

func TestSemaCastRules(t *testing.T) {
	checkErr(t, `export void f() { varying float v = 1.0; uniform float u = (uniform float)v; }`,
		"cannot cast varying to uniform")
	checkOK(t, `export void f(uniform int n) { varying float v = (varying float)n; }`)
	checkErr(t, `export void f(uniform int n) { uniform bool b = (bool)n; }`,
		"unsupported cast")
}
