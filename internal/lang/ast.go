package lang

// BaseType enumerates VSPC scalar base types.
type BaseType int

// Base types.
const (
	TVoid BaseType = iota
	TBool
	TInt
	TInt64
	TFloat
	TDouble
)

var baseNames = map[BaseType]string{
	TVoid: "void", TBool: "bool", TInt: "int", TInt64: "int64",
	TFloat: "float", TDouble: "double",
}

// String returns the source spelling of the base type.
func (b BaseType) String() string { return baseNames[b] }

// Qual is the uniform/varying qualifier.
type Qual int

// Qualifiers. QualNone means "default": varying for locals (ISPC's
// default), and is resolved during checking.
const (
	QualNone Qual = iota
	QualUniform
	QualVarying
)

// TypeSpec is a syntactic type: qualifier + base + optional array marker.
type TypeSpec struct {
	Qual  Qual
	Base  BaseType
	Array bool // "T name[]" parameter or "T name[N]" local
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Export bool
	Name   string
	Ret    TypeSpec
	Params []*ParamDecl
	Body   *BlockStmt
}

// ParamDecl is one function parameter.
type ParamDecl struct {
	Pos  Pos
	Name string
	Type TypeSpec
}

// File is a parsed compilation unit.
type File struct {
	Funcs []*FuncDecl
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	// P returns the node's source position (for diagnostics).
	P() Pos
}

// BlockStmt is { stmts... }.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares a local variable (scalar or fixed-size array).
type DeclStmt struct {
	Pos      Pos
	Type     TypeSpec
	Name     string
	ArrayLen int64 // >0 for local arrays
	Init     Expr  // nil if none
}

// AssignStmt is lhs op= rhs. Op is Assign/PlusAssign/... LHS is an Ident
// or IndexExpr.
type AssignStmt struct {
	Pos Pos
	Op  Kind
	LHS Expr
	RHS Expr
}

// IncDecStmt is lhs++ / lhs--.
type IncDecStmt struct {
	Pos Pos
	Op  Kind // PlusPlus or MinusMinus
	LHS Expr
}

// IfStmt is if (cond) then [else els]. A varying condition predicates.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // nil if none
}

// WhileStmt is while (cond) body. A varying condition runs a mask loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for with a uniform condition.
type ForStmt struct {
	Pos  Pos
	Init Stmt // DeclStmt or AssignStmt, may be nil
	Cond Expr
	Post Stmt // AssignStmt/IncDecStmt, may be nil
	Body Stmt
}

// ForeachStmt is foreach (ident = start ... end) body: the SPMD parallel
// loop whose lowering carries the paper's invariants.
type ForeachStmt struct {
	Pos   Pos
	Var   string
	Start Expr
	End   Expr
	Body  Stmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Pos Pos
	Val Expr // nil for void
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()   {}
func (*DeclStmt) stmtNode()    {}
func (*AssignStmt) stmtNode()  {}
func (*IncDecStmt) stmtNode()  {}
func (*IfStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()   {}
func (*ForStmt) stmtNode()     {}
func (*ForeachStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()    {}

// Ident is a variable reference.
type Ident struct {
	Pos  Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// FloatLit is a float literal.
type FloatLit struct {
	Pos Pos
	V   float64
}

// BoolLit is true/false.
type BoolLit struct {
	Pos Pos
	V   bool
}

// BinExpr is a binary operation.
type BinExpr struct {
	Pos  Pos
	Op   Kind
	X, Y Expr
}

// UnExpr is unary minus or logical not.
type UnExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
}

// CallExpr calls a user function or builtin by name.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// IndexExpr is array[index].
type IndexExpr struct {
	Pos   Pos
	Array *Ident
	Index Expr
}

// CastExpr is (type)expr.
type CastExpr struct {
	Pos Pos
	To  TypeSpec
	X   Expr
}

func (*Ident) exprNode()     {}
func (*IntLit) exprNode()    {}
func (*FloatLit) exprNode()  {}
func (*BoolLit) exprNode()   {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}
func (*CallExpr) exprNode()  {}
func (*IndexExpr) exprNode() {}
func (*CastExpr) exprNode()  {}

// P implements Expr.
func (e *Ident) P() Pos     { return e.Pos }
func (e *IntLit) P() Pos    { return e.Pos }
func (e *FloatLit) P() Pos  { return e.Pos }
func (e *BoolLit) P() Pos   { return e.Pos }
func (e *BinExpr) P() Pos   { return e.Pos }
func (e *UnExpr) P() Pos    { return e.Pos }
func (e *CallExpr) P() Pos  { return e.Pos }
func (e *IndexExpr) P() Pos { return e.Pos }
func (e *CastExpr) P() Pos  { return e.Pos }
