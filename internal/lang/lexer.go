package lang

import (
	"fmt"
	"strconv"
)

// Lexer tokenizes VSPC source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByte2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByte2() == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByte2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return fmt.Errorf("%s: unterminated block comment", start)
				}
				if lx.peekByte() == '*' && lx.peekByte2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peekByte()

	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil

	case isDigit(c), c == '.' && isDigit(lx.peekByte2()):
		return lx.number(pos)
	}

	two := func(k Kind) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	one := func(k Kind) (Token, error) {
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}

	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case ',':
		return one(Comma)
	case ';':
		return one(Semi)
	case '+':
		if lx.peekByte2() == '=' {
			return two(PlusAssign)
		}
		if lx.peekByte2() == '+' {
			return two(PlusPlus)
		}
		return one(Plus)
	case '-':
		if lx.peekByte2() == '=' {
			return two(MinusAssign)
		}
		if lx.peekByte2() == '-' {
			return two(MinusMinus)
		}
		return one(Minus)
	case '*':
		if lx.peekByte2() == '=' {
			return two(StarAssign)
		}
		return one(Star)
	case '/':
		if lx.peekByte2() == '=' {
			return two(SlashAssign)
		}
		return one(Slash)
	case '%':
		return one(Percent)
	case '!':
		if lx.peekByte2() == '=' {
			return two(NotEq)
		}
		return one(Not)
	case '<':
		if lx.peekByte2() == '=' {
			return two(Le)
		}
		if lx.peekByte2() == '<' {
			return two(Shl)
		}
		return one(Lt)
	case '>':
		if lx.peekByte2() == '=' {
			return two(Ge)
		}
		if lx.peekByte2() == '>' {
			return two(Shr)
		}
		return one(Gt)
	case '=':
		if lx.peekByte2() == '=' {
			return two(EqEq)
		}
		return one(Assign)
	case '&':
		if lx.peekByte2() == '&' {
			return two(AndAnd)
		}
		return one(Amp)
	case '|':
		if lx.peekByte2() == '|' {
			return two(OrOr)
		}
		return one(Pipe)
	case '^':
		return one(Caret)
	case '.':
		if lx.peekByte2() == '.' && lx.off+2 < len(lx.src) && lx.src[lx.off+2] == '.' {
			lx.advance()
			lx.advance()
			lx.advance()
			return Token{Kind: Ellipsis, Pos: pos}, nil
		}
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", pos, c)
}

func (lx *Lexer) number(pos Pos) (Token, error) {
	start := lx.off
	isFloat := false
	for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
		lx.advance()
	}
	// Fractional part — but not "..." which starts a range.
	if lx.peekByte() == '.' && lx.peekByte2() != '.' {
		isFloat = true
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
	}
	if c := lx.peekByte(); c == 'e' || c == 'E' {
		isFloat = true
		lx.advance()
		if c := lx.peekByte(); c == '+' || c == '-' {
			lx.advance()
		}
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
	}
	text := lx.src[start:lx.off]
	if c := lx.peekByte(); c == 'f' || c == 'F' {
		isFloat = true
		lx.advance()
	}
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, fmt.Errorf("%s: bad float literal %q", pos, text)
		}
		return Token{Kind: FLOATLIT, Text: text, Pos: pos, Flt: f}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, fmt.Errorf("%s: bad integer literal %q", pos, text)
	}
	return Token{Kind: INTLIT, Text: text, Pos: pos, Int: n}, nil
}

// LexAll tokenizes the entire input (testing convenience).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
