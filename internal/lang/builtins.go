package lang

// builtinClass describes the checking rule for a builtin function.
type builtinClass int

const (
	bMath1      builtinClass = iota // f(x float-ish) -> same
	bMath2                          // f(x, y) -> common float type
	bMinMax                         // min/max over any numeric pair
	bClamp                          // clamp(x, lo, hi)
	bAbs                            // abs over int or float
	bSelect                         // select(cond, a, b) lane-wise
	bReduce                         // reduce_*(varying) -> uniform
	bProgramIdx                     // programIndex() -> varying int
	bProgramCnt                     // programCount() -> uniform int
	bPrint                          // print(x) -> void
)

// Builtins maps VSPC builtin names to their checking class. Codegen has a
// matching lowering for every entry.
var Builtins = map[string]builtinClass{
	"sqrt": bMath1, "rsqrt": bMath1, "rcp": bMath1, "sin": bMath1,
	"cos": bMath1, "tan": bMath1, "exp": bMath1, "log": bMath1,
	"floor": bMath1, "ceil": bMath1, "round": bMath1,
	"pow": bMath2, "atan2": bMath2,
	"min": bMinMax, "max": bMinMax,
	"clamp":      bClamp,
	"abs":        bAbs,
	"select":     bSelect,
	"reduce_add": bReduce, "reduce_min": bReduce, "reduce_max": bReduce,
	"programIndex": bProgramIdx,
	"programCount": bProgramCnt,
	"print":        bPrint,
}

// IsBuiltin reports whether name is a VSPC builtin.
func IsBuiltin(name string) bool {
	_, ok := Builtins[name]
	return ok
}

func (c *checker) checkCall(x *CallExpr) VType {
	if cls, ok := Builtins[x.Name]; ok {
		return c.checkBuiltin(x, cls)
	}
	fi, ok := c.prog.Funcs[x.Name]
	if !ok {
		c.errorf(x.Pos, "call to undefined function %q", x.Name)
		for _, a := range x.Args {
			c.checkExpr(a)
		}
		return VType{Base: TInt, Uniform: true}
	}
	if len(x.Args) != len(fi.Params) {
		c.errorf(x.Pos, "call to %q: %d args, want %d",
			x.Name, len(x.Args), len(fi.Params))
	}
	for i, a := range x.Args {
		at := c.checkExpr(a)
		if i < len(fi.Params) {
			c.requireConvertible(a.P(), at, fi.Params[i].Type,
				"argument "+fi.Params[i].Name)
		}
	}
	return fi.Ret
}

func (c *checker) argTypes(x *CallExpr) []VType {
	out := make([]VType, len(x.Args))
	for i, a := range x.Args {
		out[i] = c.checkExpr(a)
	}
	return out
}

func (c *checker) wantArgs(x *CallExpr, n int) bool {
	if len(x.Args) != n {
		c.errorf(x.Pos, "%s expects %d argument(s), got %d", x.Name, n, len(x.Args))
		return false
	}
	return true
}

func (c *checker) checkBuiltin(x *CallExpr, cls builtinClass) VType {
	ats := c.argTypes(x)
	anyVarying := false
	for _, t := range ats {
		if !t.Uniform {
			anyVarying = true
		}
	}
	uni := !anyVarying
	switch cls {
	case bMath1:
		if !c.wantArgs(x, 1) {
			return VType{Base: TFloat, Uniform: true}
		}
		t := ats[0]
		if !t.IsNumeric() {
			c.errorf(x.Pos, "%s requires a numeric argument, got %s", x.Name, t)
		}
		base := t.Base
		if !t.IsFloatBase() {
			base = TFloat // ints promote to float
		}
		return VType{Base: base, Uniform: t.Uniform}
	case bMath2:
		if !c.wantArgs(x, 2) {
			return VType{Base: TFloat, Uniform: true}
		}
		base := TFloat
		for _, t := range ats {
			if !t.IsNumeric() {
				c.errorf(x.Pos, "%s requires numeric arguments, got %s", x.Name, t)
			}
			if t.Base == TDouble {
				base = TDouble
			}
		}
		return VType{Base: base, Uniform: uni}
	case bMinMax:
		if !c.wantArgs(x, 2) {
			return VType{Base: TInt, Uniform: true}
		}
		for _, t := range ats {
			if !t.IsNumeric() {
				c.errorf(x.Pos, "%s requires numeric arguments, got %s", x.Name, t)
				return VType{Base: TInt, Uniform: uni}
			}
		}
		return VType{Base: commonBase(ats[0].Base, ats[1].Base), Uniform: uni}
	case bClamp:
		if !c.wantArgs(x, 3) {
			return VType{Base: TInt, Uniform: true}
		}
		base := TInt
		for _, t := range ats {
			if !t.IsNumeric() {
				c.errorf(x.Pos, "clamp requires numeric arguments, got %s", t)
				return VType{Base: TInt, Uniform: uni}
			}
			base = commonBase(base, t.Base)
		}
		return VType{Base: base, Uniform: uni}
	case bAbs:
		if !c.wantArgs(x, 1) {
			return VType{Base: TInt, Uniform: true}
		}
		if !ats[0].IsNumeric() {
			c.errorf(x.Pos, "abs requires a numeric argument, got %s", ats[0])
		}
		return ats[0]
	case bSelect:
		if !c.wantArgs(x, 3) {
			return VType{Base: TInt, Uniform: true}
		}
		if ats[0].Base != TBool || ats[0].Array {
			c.errorf(x.Pos, "select condition must be bool, got %s", ats[0])
		}
		if !ats[1].IsNumeric() || !ats[2].IsNumeric() {
			c.errorf(x.Pos, "select arms must be numeric")
			return VType{Base: TInt, Uniform: uni}
		}
		return VType{Base: commonBase(ats[1].Base, ats[2].Base), Uniform: uni}
	case bReduce:
		if !c.wantArgs(x, 1) {
			return VType{Base: TInt, Uniform: true}
		}
		t := ats[0]
		if !t.IsNumeric() {
			c.errorf(x.Pos, "%s requires a numeric argument, got %s", x.Name, t)
		}
		if t.Uniform {
			c.errorf(x.Pos, "%s requires a varying argument", x.Name)
		}
		if c.varyingCtx > 0 {
			c.errorf(x.Pos, "%s must be used outside varying control flow", x.Name)
		}
		return VType{Base: t.Base, Uniform: true}
	case bProgramIdx:
		c.wantArgs(x, 0)
		return VType{Base: TInt, Uniform: false}
	case bProgramCnt:
		c.wantArgs(x, 0)
		return VType{Base: TInt, Uniform: true}
	case bPrint:
		if !c.wantArgs(x, 1) {
			return VType{Base: TVoid, Uniform: true}
		}
		if ats[0].Array {
			c.errorf(x.Pos, "cannot print an array")
		}
		return VType{Base: TVoid, Uniform: true}
	}
	panic("lang: unhandled builtin class")
}
