package lang

import (
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) *FuncDecl {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 1 {
		t.Fatalf("expected 1 function, got %d", len(f.Funcs))
	}
	return f.Funcs[0]
}

func TestParseFunctionShape(t *testing.T) {
	fd := parseOne(t, `
export void vcopy(uniform int a1[], uniform int a2[], uniform int n) {
	foreach (i = 0 ... n) {
		a2[i] = a1[i];
	}
	return;
}`)
	if !fd.Export || fd.Name != "vcopy" || fd.Ret.Base != TVoid {
		t.Fatalf("header wrong: %+v", fd)
	}
	if len(fd.Params) != 3 || !fd.Params[0].Type.Array || fd.Params[2].Type.Array {
		t.Fatalf("params wrong: %+v", fd.Params)
	}
	if len(fd.Body.Stmts) != 2 {
		t.Fatalf("body stmts = %d", len(fd.Body.Stmts))
	}
	fe, ok := fd.Body.Stmts[0].(*ForeachStmt)
	if !ok || fe.Var != "i" {
		t.Fatalf("first stmt not foreach: %T", fd.Body.Stmts[0])
	}
	if _, ok := fd.Body.Stmts[1].(*ReturnStmt); !ok {
		t.Fatal("second stmt not return")
	}
}

func TestParsePrecedence(t *testing.T) {
	fd := parseOne(t, `void f() { int x = 1 + 2 * 3 < 4 && true; }`)
	decl := fd.Body.Stmts[0].(*DeclStmt)
	// Expect: ((1 + (2*3)) < 4) && true
	and, ok := decl.Init.(*BinExpr)
	if !ok || and.Op != AndAnd {
		t.Fatalf("top not &&: %#v", decl.Init)
	}
	lt, ok := and.X.(*BinExpr)
	if !ok || lt.Op != Lt {
		t.Fatalf("lhs not <: %#v", and.X)
	}
	add, ok := lt.X.(*BinExpr)
	if !ok || add.Op != Plus {
		t.Fatalf("lhs of < not +: %#v", lt.X)
	}
	mul, ok := add.Y.(*BinExpr)
	if !ok || mul.Op != Star {
		t.Fatalf("rhs of + not *: %#v", add.Y)
	}
}

func TestParseCastVsParen(t *testing.T) {
	fd := parseOne(t, `void f() { float y = (float)1 + (1 + 2); }`)
	decl := fd.Body.Stmts[0].(*DeclStmt)
	add := decl.Init.(*BinExpr)
	if _, ok := add.X.(*CastExpr); !ok {
		t.Fatalf("lhs should be a cast: %#v", add.X)
	}
	if inner, ok := add.Y.(*BinExpr); !ok || inner.Op != Plus {
		t.Fatalf("rhs should be parenthesized add: %#v", add.Y)
	}
}

func TestParseControlFlow(t *testing.T) {
	fd := parseOne(t, `
void f(int a[], uniform int n) {
	for (uniform int i = 0; i < n; i++) {
		if (a[i] > 0) {
			a[i] = 0;
		} else {
			a[i] += 1;
		}
	}
	while (n > 0) {
		n = n - 1;
	}
}`)
	fs, ok := fd.Body.Stmts[0].(*ForStmt)
	if !ok {
		t.Fatalf("not a for: %T", fd.Body.Stmts[0])
	}
	if _, ok := fs.Init.(*DeclStmt); !ok {
		t.Fatal("for init not a decl")
	}
	if _, ok := fs.Post.(*IncDecStmt); !ok {
		t.Fatal("for post not ++")
	}
	body := fs.Body.(*BlockStmt)
	ifst, ok := body.Stmts[0].(*IfStmt)
	if !ok || ifst.Else == nil {
		t.Fatal("if/else not parsed")
	}
	if _, ok := fd.Body.Stmts[1].(*WhileStmt); !ok {
		t.Fatal("while not parsed")
	}
}

func TestParseLocalArray(t *testing.T) {
	fd := parseOne(t, `void f() { uniform float tmp[16]; }`)
	d := fd.Body.Stmts[0].(*DeclStmt)
	if d.ArrayLen != 16 || !d.Type.Array {
		t.Fatalf("local array decl wrong: %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"void f( {}", "expected type"},
		{"void f() { int; }", "expected identifier"},
		{"void f() { foreach (i = 0 .. n) {} }", "expected"},
		{"void f() { 1 + 2 = 3; }", "l-value"},
		{"void f() { if true {} }", "expected ("},
		{"void f() { return 1 }", "expected ;"},
		{"void f() {", "unterminated block"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.frag)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("void f() {\n  int = 3;\n}")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should carry line 2 position: %v", err)
	}
}

func TestParseUnaryAndCalls(t *testing.T) {
	fd := parseOne(t, `void f() { float x = -sqrt(2.0) * !false; }`)
	decl := fd.Body.Stmts[0].(*DeclStmt)
	mul := decl.Init.(*BinExpr)
	neg, ok := mul.X.(*UnExpr)
	if !ok || neg.Op != Minus {
		t.Fatalf("lhs not negation: %#v", mul.X)
	}
	call, ok := neg.X.(*CallExpr)
	if !ok || call.Name != "sqrt" || len(call.Args) != 1 {
		t.Fatalf("not a sqrt call: %#v", neg.X)
	}
	if not, ok := mul.Y.(*UnExpr); !ok || not.Op != Not {
		t.Fatalf("rhs not !: %#v", mul.Y)
	}
}
