package lang

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := kinds(t, "export void f(uniform int a[]) { a[0] = 1; }")
	want := []Kind{KwExport, KwVoid, IDENT, LParen, KwUniform, KwInt, IDENT,
		LBracket, RBracket, RParen, LBrace, IDENT, LBracket, INTLIT, RBracket,
		Assign, INTLIT, Semi, RBrace, EOF}
	if len(got) != len(want) {
		t.Fatalf("token count %d != %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	got := kinds(t, "+ - * / % += -= *= /= ++ -- == != <= >= < > << >> && || & | ^ ! ...")
	want := []Kind{Plus, Minus, Star, Slash, Percent, PlusAssign, MinusAssign,
		StarAssign, SlashAssign, PlusPlus, MinusMinus, EqEq, NotEq, Le, Ge,
		Lt, Gt, Shl, Shr, AndAnd, OrOr, Amp, Pipe, Caret, Not, Ellipsis, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := LexAll("42 3.5 1e3 2.5e-2 7f 0.5f")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != INTLIT || toks[0].Int != 42 {
		t.Errorf("int literal: %+v", toks[0])
	}
	for i, want := range []float64{3.5, 1000, 0.025, 7, 0.5} {
		tk := toks[i+1]
		if tk.Kind != FLOATLIT || tk.Flt != want {
			t.Errorf("float literal %d: %+v want %v", i, tk, want)
		}
	}
}

// The foreach range "0 ... n" must not lex "0 ." as a float.
func TestLexEllipsisAfterInt(t *testing.T) {
	toks, err := LexAll("0 ... n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != INTLIT || toks[1].Kind != Ellipsis || toks[2].Kind != IDENT {
		t.Fatalf("ellipsis ambiguity: %+v", toks)
	}
}

func TestLexComments(t *testing.T) {
	got := kinds(t, `
		// line comment
		int /* block
		comment */ x;`)
	want := []Kind{KwInt, IDENT, Semi, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := LexAll("int x = @;"); err == nil {
		t.Error("unexpected character should error")
	}
	if _, err := LexAll("/* unterminated"); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Errorf("unterminated comment error = %v", err)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("positions wrong: %v %v", toks[0].Pos, toks[1].Pos)
	}
}
