package lang

import "fmt"

// Parser builds an AST from tokens.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a whole VSPC source file.
func Parse(src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	f := &File{}
	for p.cur().Kind != EOF {
		fd, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fd)
	}
	return f, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("%s: expected %s, found %s", t.Pos, k, describe(t))
	}
	p.next()
	return t, nil
}

func describe(t Token) string {
	if t.Kind == IDENT {
		return fmt.Sprintf("identifier %q", t.Text)
	}
	return t.Kind.String()
}

func isBaseTypeKind(k Kind) bool {
	switch k {
	case KwVoid, KwBool, KwInt, KwInt64, KwFloat, KwDouble:
		return true
	}
	return false
}

func isTypeStart(k Kind) bool {
	return isBaseTypeKind(k) || k == KwUniform || k == KwVarying
}

func baseFromKind(k Kind) BaseType {
	switch k {
	case KwVoid:
		return TVoid
	case KwBool:
		return TBool
	case KwInt:
		return TInt
	case KwInt64:
		return TInt64
	case KwFloat:
		return TFloat
	case KwDouble:
		return TDouble
	}
	panic("lang: not a base type kind")
}

// typeSpec parses [uniform|varying] basetype.
func (p *Parser) typeSpec() (TypeSpec, error) {
	ts := TypeSpec{}
	switch p.cur().Kind {
	case KwUniform:
		ts.Qual = QualUniform
		p.next()
	case KwVarying:
		ts.Qual = QualVarying
		p.next()
	}
	t := p.cur()
	if !isBaseTypeKind(t.Kind) {
		return ts, fmt.Errorf("%s: expected type, found %s", t.Pos, describe(t))
	}
	p.next()
	ts.Base = baseFromKind(t.Kind)
	return ts, nil
}

func (p *Parser) funcDecl() (*FuncDecl, error) {
	fd := &FuncDecl{Pos: p.cur().Pos}
	if p.accept(KwExport) {
		fd.Export = true
	}
	ret, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	fd.Ret = ret
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	fd.Name = name.Text
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	for p.cur().Kind != RParen {
		if len(fd.Params) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		pd := &ParamDecl{Pos: p.cur().Pos}
		ts, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		nm, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.accept(LBracket) {
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			ts.Array = true
		}
		pd.Name = nm.Text
		pd.Type = ts
		fd.Params = append(fd.Params, pd)
	}
	p.next() // RParen
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *Parser) block() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, fmt.Errorf("%s: unterminated block", lb.Pos)
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // RBrace
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == LBrace:
		return p.block()
	case isTypeStart(t.Kind):
		return p.declStmt(true)
	case t.Kind == KwIf:
		return p.ifStmt()
	case t.Kind == KwWhile:
		return p.whileStmt()
	case t.Kind == KwFor:
		return p.forStmt()
	case t.Kind == KwForeach:
		return p.foreachStmt()
	case t.Kind == KwReturn:
		p.next()
		rs := &ReturnStmt{Pos: t.Pos}
		if p.cur().Kind != Semi {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			rs.Val = v
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return rs, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// declStmt parses "type name [= init];" or "type name[N];".
func (p *Parser) declStmt(wantSemi bool) (Stmt, error) {
	pos := p.cur().Pos
	ts, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	nm, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Pos: pos, Type: ts, Name: nm.Text}
	if p.accept(LBracket) {
		sz, err := p.expect(INTLIT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		d.ArrayLen = sz.Int
		d.Type.Array = true
	} else if p.accept(Assign) {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if wantSemi {
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// simpleStmt parses assignment, ++/--, or an expression statement
// (no trailing semicolon).
func (p *Parser) simpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	switch k := p.cur().Kind; k {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign:
		p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := checkLValue(lhs); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, Op: k, LHS: lhs, RHS: rhs}, nil
	case PlusPlus, MinusMinus:
		p.next()
		if err := checkLValue(lhs); err != nil {
			return nil, err
		}
		return &IncDecStmt{Pos: pos, Op: k, LHS: lhs}, nil
	}
	return &ExprStmt{Pos: pos, X: lhs}, nil
}

func checkLValue(e Expr) error {
	switch e.(type) {
	case *Ident, *IndexExpr:
		return nil
	}
	return fmt.Errorf("%s: not an assignable l-value", e.P())
}

func (p *Parser) ifStmt() (Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.accept(KwElse) {
		els, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	pos := p.next().Pos // while
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	pos := p.next().Pos // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: pos}
	if p.cur().Kind != Semi {
		var err error
		if isTypeStart(p.cur().Kind) {
			fs.Init, err = p.declStmt(false)
		} else {
			fs.Init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if p.cur().Kind != Semi {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if p.cur().Kind != RParen {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

func (p *Parser) foreachStmt() (Stmt, error) {
	pos := p.next().Pos // foreach
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	nm, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Assign); err != nil {
		return nil, err
	}
	start, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Ellipsis); err != nil {
		return nil, err
	}
	end, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &ForeachStmt{Pos: pos, Var: nm.Text, Start: start, End: end, Body: body}, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Pipe:   3,
	Caret:  4,
	Amp:    5,
	EqEq:   6, NotEq: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

func (p *Parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *Parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := binPrec[op.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Pos: op.Pos, Op: op.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) unary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Minus, Not:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: t.Pos, Op: t.Kind, X: x}, nil
	}
	return p.primary()
}

func (p *Parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		return &IntLit{Pos: t.Pos, V: t.Int}, nil
	case FLOATLIT:
		p.next()
		return &FloatLit{Pos: t.Pos, V: t.Flt}, nil
	case KwTrue:
		p.next()
		return &BoolLit{Pos: t.Pos, V: true}, nil
	case KwFalse:
		p.next()
		return &BoolLit{Pos: t.Pos, V: false}, nil
	case LParen:
		// Cast "(type)expr" vs parenthesized expression.
		if isTypeStart(p.peek().Kind) {
			p.next() // (
			ts, err := p.typeSpec()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Pos: t.Pos, To: ts, X: x}, nil
		}
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case IDENT:
		p.next()
		switch p.cur().Kind {
		case LParen:
			p.next()
			call := &CallExpr{Pos: t.Pos, Name: t.Text}
			for p.cur().Kind != RParen {
				if len(call.Args) > 0 {
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // RParen
			return call, nil
		case LBracket:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: t.Pos, Array: &Ident{Pos: t.Pos, Name: t.Text}, Index: idx}, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	}
	return nil, fmt.Errorf("%s: unexpected %s in expression", t.Pos, describe(t))
}
