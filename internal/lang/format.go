package lang

import (
	"fmt"
	"strings"
)

// Format pretty-prints a parsed file back to canonical VSPC source.
// Format(Parse(src)) is a fixpoint: parsing the output yields an
// identical AST (tested by the round-trip property test), which makes the
// formatter usable as a canonicalizer for tooling.
func Format(f *File) string {
	var p printer
	for i, fd := range f.Funcs {
		if i > 0 {
			p.line("")
		}
		p.funcDecl(fd)
	}
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(s string) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteByte('\t')
	}
	p.sb.WriteString(s)
	p.sb.WriteByte('\n')
}

func typeSpecString(ts TypeSpec) string {
	var parts []string
	switch ts.Qual {
	case QualUniform:
		parts = append(parts, "uniform")
	case QualVarying:
		parts = append(parts, "varying")
	}
	parts = append(parts, ts.Base.String())
	return strings.Join(parts, " ")
}

func (p *printer) funcDecl(fd *FuncDecl) {
	var hdr strings.Builder
	if fd.Export {
		hdr.WriteString("export ")
	}
	hdr.WriteString(typeSpecString(fd.Ret))
	hdr.WriteString(" ")
	hdr.WriteString(fd.Name)
	hdr.WriteString("(")
	for i, pd := range fd.Params {
		if i > 0 {
			hdr.WriteString(", ")
		}
		hdr.WriteString(typeSpecString(pd.Type))
		hdr.WriteString(" ")
		hdr.WriteString(pd.Name)
		if pd.Type.Array {
			hdr.WriteString("[]")
		}
	}
	hdr.WriteString(") {")
	p.line(hdr.String())
	p.indent++
	for _, s := range fd.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) blockOrStmt(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.indent++
		for _, sub := range b.Stmts {
			p.stmt(sub)
		}
		p.indent--
		return
	}
	p.indent++
	p.stmt(s)
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, sub := range st.Stmts {
			p.stmt(sub)
		}
		p.indent--
		p.line("}")
	case *DeclStmt:
		p.line(declString(st) + ";")
	case *AssignStmt:
		p.line(fmt.Sprintf("%s %s %s;", ExprString(st.LHS), st.Op, ExprString(st.RHS)))
	case *IncDecStmt:
		p.line(ExprString(st.LHS) + st.Op.String() + ";")
	case *IfStmt:
		p.line("if (" + ExprString(st.Cond) + ") {")
		p.blockOrStmt(st.Then)
		if st.Else != nil {
			p.line("} else {")
			p.blockOrStmt(st.Else)
		}
		p.line("}")
	case *WhileStmt:
		p.line("while (" + ExprString(st.Cond) + ") {")
		p.blockOrStmt(st.Body)
		p.line("}")
	case *ForStmt:
		init, post := "", ""
		if st.Init != nil {
			init = simpleStmtString(st.Init)
		}
		cond := ""
		if st.Cond != nil {
			cond = ExprString(st.Cond)
		}
		if st.Post != nil {
			post = simpleStmtString(st.Post)
		}
		p.line(fmt.Sprintf("for (%s; %s; %s) {", init, cond, post))
		p.blockOrStmt(st.Body)
		p.line("}")
	case *ForeachStmt:
		p.line(fmt.Sprintf("foreach (%s = %s ... %s) {",
			st.Var, ExprString(st.Start), ExprString(st.End)))
		p.blockOrStmt(st.Body)
		p.line("}")
	case *ReturnStmt:
		if st.Val == nil {
			p.line("return;")
		} else {
			p.line("return " + ExprString(st.Val) + ";")
		}
	case *ExprStmt:
		p.line(ExprString(st.X) + ";")
	default:
		panic(fmt.Sprintf("lang: unformatted statement %T", s))
	}
}

func declString(st *DeclStmt) string {
	out := typeSpecString(st.Type) + " " + st.Name
	if st.Type.Array {
		return fmt.Sprintf("%s[%d]", out, st.ArrayLen)
	}
	if st.Init != nil {
		out += " = " + ExprString(st.Init)
	}
	return out
}

func simpleStmtString(s Stmt) string {
	switch st := s.(type) {
	case *DeclStmt:
		return declString(st)
	case *AssignStmt:
		return fmt.Sprintf("%s %s %s", ExprString(st.LHS), st.Op, ExprString(st.RHS))
	case *IncDecStmt:
		return ExprString(st.LHS) + st.Op.String()
	case *ExprStmt:
		return ExprString(st.X)
	}
	panic(fmt.Sprintf("lang: not a simple statement: %T", s))
}

// ExprString renders an expression with explicit parentheses around every
// binary operation, so precedence is unambiguous and re-parsing
// reproduces the tree exactly.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return fmt.Sprintf("%d", x.V)
	case *FloatLit:
		s := fmt.Sprintf("%g", x.V)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *BoolLit:
		if x.V {
			return "true"
		}
		return "false"
	case *BinExpr:
		return "(" + ExprString(x.X) + " " + x.Op.String() + " " + ExprString(x.Y) + ")"
	case *UnExpr:
		return x.Op.String() + ExprString(x.X)
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, ExprString(a))
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *IndexExpr:
		return x.Array.Name + "[" + ExprString(x.Index) + "]"
	case *CastExpr:
		return "(" + typeSpecString(x.To) + ")" + ExprString(x.X)
	}
	panic(fmt.Sprintf("lang: unformatted expression %T", e))
}
