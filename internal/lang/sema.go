package lang

import (
	"errors"
	"fmt"
)

// VType is a checked VSPC type: base scalar type, uniformity, and whether
// the value is an array (pointer to uniform storage of Base elements).
type VType struct {
	Base    BaseType
	Uniform bool
	Array   bool
}

// String formats the type as source text.
func (t VType) String() string {
	q := "varying"
	if t.Uniform {
		q = "uniform"
	}
	s := q + " " + t.Base.String()
	if t.Array {
		s += "[]"
	}
	return s
}

// IsNumeric reports whether the type supports arithmetic.
func (t VType) IsNumeric() bool {
	return !t.Array && (t.Base == TInt || t.Base == TInt64 ||
		t.Base == TFloat || t.Base == TDouble)
}

// IsIntBase reports whether the base type is an integer.
func (t VType) IsIntBase() bool { return t.Base == TInt || t.Base == TInt64 }

// IsFloatBase reports whether the base type is floating-point.
func (t VType) IsFloatBase() bool { return t.Base == TFloat || t.Base == TDouble }

// Symbol is a declared variable or parameter.
type Symbol struct {
	Name string
	Type VType
	// ParamIndex is the parameter position, or -1 for locals.
	ParamIndex int
	// ArrayLen is the cell count for local arrays (0 otherwise).
	ArrayLen int64
	// Foreach marks the induction variable of a foreach loop (used by
	// codegen's affine unit-stride analysis).
	Foreach bool
	// DeclDepth is the varying-control-flow nesting depth at the
	// declaration. A uniform variable may only be assigned at the same
	// depth it was declared at: a uniform declared inside a foreach body
	// is lane-uniform there, but one declared outside must not be
	// modified under varying control.
	DeclDepth int
}

// FuncInfo is the checked signature of a function.
type FuncInfo struct {
	Decl   *FuncDecl
	Name   string
	Ret    VType
	Params []*Symbol
}

// Program is a fully checked compilation unit, ready for code generation.
type Program struct {
	File  *File
	Funcs map[string]*FuncInfo
	// Types records the checked type of every expression.
	Types map[Expr]VType
	// Refs resolves identifier references to their symbols.
	Refs map[*Ident]*Symbol
	// DeclSyms maps declaration statements to the symbols they create.
	DeclSyms map[*DeclStmt]*Symbol
	// ForeachSyms maps foreach statements to their induction symbols.
	ForeachSyms map[*ForeachStmt]*Symbol
}

type checker struct {
	prog   *Program
	errs   []error
	scopes []map[string]*Symbol
	fn     *FuncInfo
	// varyingCtx is > 0 inside varying control flow (foreach body,
	// varying if, varying while) where assignments are masked.
	varyingCtx int
	// inForeach is > 0 inside a foreach body (foreach cannot nest).
	inForeach int
}

// Check type-checks a parsed file.
func Check(f *File) (*Program, error) {
	c := &checker{prog: &Program{
		File:        f,
		Funcs:       map[string]*FuncInfo{},
		Types:       map[Expr]VType{},
		Refs:        map[*Ident]*Symbol{},
		DeclSyms:    map[*DeclStmt]*Symbol{},
		ForeachSyms: map[*ForeachStmt]*Symbol{},
	}}
	// Collect signatures first (functions may call forward).
	for _, fd := range f.Funcs {
		if _, dup := c.prog.Funcs[fd.Name]; dup {
			c.errorf(fd.Pos, "duplicate function %q", fd.Name)
			continue
		}
		fi := &FuncInfo{Decl: fd, Name: fd.Name}
		fi.Ret = c.resolveType(fd.Pos, fd.Ret, true)
		for i, pd := range fd.Params {
			t := c.resolveType(pd.Pos, pd.Type, false)
			if t.Array && !t.Uniform {
				c.errorf(pd.Pos, "array parameter %q must be uniform", pd.Name)
			}
			fi.Params = append(fi.Params, &Symbol{
				Name: pd.Name, Type: t, ParamIndex: i,
			})
		}
		c.prog.Funcs[fd.Name] = fi
	}
	for _, fd := range f.Funcs {
		c.checkFunc(c.prog.Funcs[fd.Name])
	}
	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	return c.prog, nil
}

// Compile parses and checks src in one step.
func Compile(src string) (*Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Check(f)
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// resolveType converts a TypeSpec to a VType. Default qualifier: uniform
// for array params and return types, varying otherwise (ISPC's default
// for locals is varying).
func (c *checker) resolveType(pos Pos, ts TypeSpec, isRet bool) VType {
	t := VType{Base: ts.Base, Array: ts.Array}
	switch ts.Qual {
	case QualUniform:
		t.Uniform = true
	case QualVarying:
		t.Uniform = false
		if ts.Array {
			c.errorf(pos, "varying arrays are not supported")
		}
	case QualNone:
		t.Uniform = ts.Array // arrays default uniform; scalars varying
	}
	if ts.Base == TVoid && !isRet {
		c.errorf(pos, "void is only valid as a return type")
	}
	return t
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(pos Pos, sym *Symbol) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		c.errorf(pos, "redeclaration of %q", sym.Name)
	}
	top[sym.Name] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkFunc(fi *FuncInfo) {
	c.fn = fi
	c.varyingCtx = 0
	c.inForeach = 0
	c.push()
	for _, p := range fi.Params {
		c.define(fi.Decl.Pos, p)
	}
	c.checkStmt(fi.Decl.Body)
	c.pop()
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		c.push()
		for _, sub := range st.Stmts {
			c.checkStmt(sub)
		}
		c.pop()
	case *DeclStmt:
		c.checkDecl(st)
	case *AssignStmt:
		c.checkAssign(st)
	case *IncDecStmt:
		// Desugared view: lhs = lhs ± 1.
		t := c.checkExpr(st.LHS)
		if !t.IsNumeric() {
			c.errorf(st.Pos, "++/-- requires a numeric l-value")
		}
		c.checkStoreTarget(st.Pos, st.LHS, t)
	case *IfStmt:
		ct := c.checkExpr(st.Cond)
		if ct.Base != TBool || ct.Array {
			c.errorf(st.Pos, "if condition must be bool, got %s", ct)
		}
		if ct.Uniform {
			c.checkStmt(st.Then)
			if st.Else != nil {
				c.checkStmt(st.Else)
			}
		} else {
			c.varyingCtx++
			c.checkVaryingBody(st.Pos, st.Then)
			if st.Else != nil {
				c.checkVaryingBody(st.Pos, st.Else)
			}
			c.varyingCtx--
		}
	case *WhileStmt:
		ct := c.checkExpr(st.Cond)
		if ct.Base != TBool || ct.Array {
			c.errorf(st.Pos, "while condition must be bool, got %s", ct)
		}
		if ct.Uniform {
			c.checkStmt(st.Body)
		} else {
			c.varyingCtx++
			c.checkVaryingBody(st.Pos, st.Body)
			c.varyingCtx--
		}
	case *ForStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			ct := c.checkExpr(st.Cond)
			if ct.Base != TBool || !ct.Uniform {
				c.errorf(st.Pos, "for condition must be uniform bool, got %s", ct)
			}
		}
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.checkStmt(st.Body)
		c.pop()
	case *ForeachStmt:
		if c.inForeach > 0 || c.varyingCtx > 0 {
			c.errorf(st.Pos, "foreach cannot appear under varying control flow")
		}
		for _, e := range []Expr{st.Start, st.End} {
			t := c.checkExpr(e)
			if !t.Uniform || t.Base != TInt {
				c.errorf(e.P(), "foreach bound must be uniform int, got %s", t)
			}
		}
		c.push()
		ind := &Symbol{
			Name: st.Var, ParamIndex: -1, Foreach: true,
			Type: VType{Base: TInt, Uniform: false},
		}
		c.define(st.Pos, ind)
		c.prog.ForeachSyms[st] = ind
		c.inForeach++
		c.varyingCtx++
		c.checkStmt(st.Body)
		c.varyingCtx--
		c.inForeach--
		c.pop()
	case *ReturnStmt:
		if c.varyingCtx > 0 {
			c.errorf(st.Pos, "return under varying control flow is not supported")
		}
		if st.Val == nil {
			if c.fn.Ret.Base != TVoid {
				c.errorf(st.Pos, "missing return value")
			}
			return
		}
		if c.fn.Ret.Base == TVoid {
			c.errorf(st.Pos, "return with value in void function")
			return
		}
		t := c.checkExpr(st.Val)
		c.requireConvertible(st.Pos, t, c.fn.Ret, "return value")
	case *ExprStmt:
		c.checkExpr(st.X)
	default:
		panic(fmt.Sprintf("lang: unhandled statement %T", s))
	}
}

// checkVaryingBody restricts statements allowed under a varying mask.
func (c *checker) checkVaryingBody(pos Pos, s Stmt) {
	c.checkStmt(s)
}

func (c *checker) checkDecl(st *DeclStmt) {
	t := c.resolveType(st.Pos, st.Type, false)
	sym := &Symbol{Name: st.Name, Type: t, ParamIndex: -1, ArrayLen: st.ArrayLen,
		DeclDepth: c.varyingCtx}
	if st.Type.Array {
		if st.ArrayLen <= 0 {
			c.errorf(st.Pos, "local array %q needs a positive length", st.Name)
		}
		if !t.Uniform {
			c.errorf(st.Pos, "local arrays must be uniform")
		}
		if c.varyingCtx > 0 {
			c.errorf(st.Pos, "local arrays cannot be declared under varying control flow")
		}
	}
	if st.Init != nil {
		it := c.checkExpr(st.Init)
		c.requireConvertible(st.Pos, it, t, "initializer of "+st.Name)
	}
	if t.Uniform && !t.Array && c.varyingCtx > 0 && st.Init != nil {
		// Declaring+initializing a uniform under varying control is fine
		// only if the initializer is uniform (checked above).
		_ = t
	}
	c.define(st.Pos, sym)
	c.prog.DeclSyms[st] = sym
}

func (c *checker) checkAssign(st *AssignStmt) {
	lt := c.checkExpr(st.LHS)
	rt := c.checkExpr(st.RHS)
	if st.Op != Assign && !lt.IsNumeric() {
		c.errorf(st.Pos, "compound assignment requires numeric l-value, got %s", lt)
	}
	c.requireConvertible(st.Pos, rt, lt, "assignment")
	c.checkStoreTarget(st.Pos, st.LHS, lt)
}

// checkStoreTarget enforces the uniform-store-under-mask rule.
func (c *checker) checkStoreTarget(pos Pos, lhs Expr, lt VType) {
	switch l := lhs.(type) {
	case *Ident:
		sym := c.prog.Refs[l]
		if sym == nil {
			return
		}
		if sym.Foreach {
			c.errorf(pos, "cannot assign to foreach induction variable %q", sym.Name)
		}
		if sym.Type.Array {
			c.errorf(pos, "cannot assign to array %q", sym.Name)
		}
		if sym.Type.Uniform && sym.DeclDepth < c.varyingCtx {
			c.errorf(pos, "cannot assign to uniform %q under varying control flow", sym.Name)
		}
	case *IndexExpr:
		// Storing to a uniform location a[uniform i] under varying control
		// would race across lanes; require a varying index or uniform ctx.
		it := c.prog.Types[l.Index]
		if it.Uniform && c.varyingCtx > 0 {
			c.errorf(pos, "store to uniform array location under varying control flow")
		}
	}
}

// rank orders base types for implicit conversion.
func rank(b BaseType) int {
	switch b {
	case TBool:
		return 0
	case TInt:
		return 1
	case TInt64:
		return 2
	case TFloat:
		return 3
	case TDouble:
		return 4
	}
	return -1
}

// commonBase returns the promotion of two numeric base types.
func commonBase(a, b BaseType) BaseType {
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

// convertible reports whether a value of type from can be implicitly used
// where to is expected: numeric widening/narrowing is allowed C-style,
// uniform broadcasts to varying, varying never converts to uniform.
func convertible(from, to VType) bool {
	if from.Array || to.Array {
		return from.Array && to.Array && from.Base == to.Base
	}
	if !from.Uniform && to.Uniform {
		return false
	}
	if from.Base == to.Base {
		return true
	}
	// bool does not implicitly convert to/from numerics.
	if from.Base == TBool || to.Base == TBool {
		return false
	}
	return true
}

func (c *checker) requireConvertible(pos Pos, from, to VType, what string) {
	if !convertible(from, to) {
		c.errorf(pos, "%s: cannot use %s as %s", what, from, to)
	}
}

func (c *checker) setType(e Expr, t VType) VType {
	c.prog.Types[e] = t
	return t
}

func (c *checker) checkExpr(e Expr) VType {
	switch x := e.(type) {
	case *IntLit:
		return c.setType(e, VType{Base: TInt, Uniform: true})
	case *FloatLit:
		return c.setType(e, VType{Base: TFloat, Uniform: true})
	case *BoolLit:
		return c.setType(e, VType{Base: TBool, Uniform: true})
	case *Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Pos, "undefined: %q", x.Name)
			return c.setType(e, VType{Base: TInt, Uniform: true})
		}
		c.prog.Refs[x] = sym
		return c.setType(e, sym.Type)
	case *IndexExpr:
		at := c.checkExpr(x.Array)
		it := c.checkExpr(x.Index)
		if !at.Array {
			c.errorf(x.Pos, "indexing non-array %q", x.Array.Name)
			return c.setType(e, VType{Base: TInt, Uniform: true})
		}
		if !it.IsIntBase() || it.Array {
			c.errorf(x.Pos, "array index must be an integer, got %s", it)
		}
		return c.setType(e, VType{Base: at.Base, Uniform: it.Uniform})
	case *UnExpr:
		t := c.checkExpr(x.X)
		switch x.Op {
		case Minus:
			if !t.IsNumeric() {
				c.errorf(x.Pos, "unary - requires numeric operand, got %s", t)
			}
		case Not:
			if t.Base != TBool || t.Array {
				c.errorf(x.Pos, "! requires bool operand, got %s", t)
			}
		}
		return c.setType(e, t)
	case *BinExpr:
		return c.setType(e, c.checkBin(x))
	case *CastExpr:
		t := c.checkExpr(x.X)
		to := VType{Base: x.To.Base, Uniform: t.Uniform}
		switch x.To.Qual {
		case QualUniform:
			if !t.Uniform {
				c.errorf(x.Pos, "cannot cast varying to uniform")
			}
			to.Uniform = true
		case QualVarying:
			to.Uniform = false
		}
		if t.Array || x.To.Array {
			c.errorf(x.Pos, "cannot cast array types")
		}
		if to.Base == TVoid || to.Base == TBool || t.Base == TBool {
			c.errorf(x.Pos, "unsupported cast from %s to %s", t, to)
		}
		return c.setType(e, to)
	case *CallExpr:
		return c.setType(e, c.checkCall(x))
	}
	panic(fmt.Sprintf("lang: unhandled expression %T", e))
}

func (c *checker) checkBin(x *BinExpr) VType {
	lt := c.checkExpr(x.X)
	rt := c.checkExpr(x.Y)
	uniform := lt.Uniform && rt.Uniform
	switch x.Op {
	case AndAnd, OrOr:
		if lt.Base != TBool || rt.Base != TBool {
			c.errorf(x.Pos, "logical op requires bool operands, got %s and %s", lt, rt)
		}
		return VType{Base: TBool, Uniform: uniform}
	case EqEq, NotEq, Lt, Le, Gt, Ge:
		if !lt.IsNumeric() || !rt.IsNumeric() {
			if !(lt.Base == TBool && rt.Base == TBool && (x.Op == EqEq || x.Op == NotEq)) {
				c.errorf(x.Pos, "comparison requires numeric operands, got %s and %s", lt, rt)
			}
		}
		return VType{Base: TBool, Uniform: uniform}
	case Percent, Amp, Pipe, Caret, Shl, Shr:
		if !lt.IsIntBase() || !rt.IsIntBase() {
			c.errorf(x.Pos, "integer op %s requires integer operands, got %s and %s",
				x.Op, lt, rt)
			return VType{Base: TInt, Uniform: uniform}
		}
		return VType{Base: commonBase(lt.Base, rt.Base), Uniform: uniform}
	case Plus, Minus, Star, Slash:
		if !lt.IsNumeric() || !rt.IsNumeric() {
			c.errorf(x.Pos, "arithmetic requires numeric operands, got %s and %s", lt, rt)
			return VType{Base: TInt, Uniform: uniform}
		}
		return VType{Base: commonBase(lt.Base, rt.Base), Uniform: uniform}
	}
	c.errorf(x.Pos, "unsupported binary operator %s", x.Op)
	return VType{Base: TInt, Uniform: true}
}
