// Package lang implements VSPC, a small ISPC-like SPMD language: C-style
// syntax with uniform/varying qualifiers, a one-dimensional foreach loop,
// varying control flow (if/while under execution masks) and array
// parameters. It provides the lexer, parser, AST and semantic checker;
// package codegen lowers checked programs to vector IR.
//
// VSPC stands in for the ISPC language/compiler in the paper's study:
// the paper's detectors are synthesized from the ISPC code generator's
// foreach lowering, which package codegen reproduces structurally.
package lang

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT

	// Keywords.
	KwExport
	KwUniform
	KwVarying
	KwVoid
	KwInt
	KwInt64
	KwFloat
	KwDouble
	KwBool
	KwIf
	KwElse
	KwWhile
	KwFor
	KwForeach
	KwReturn
	KwTrue
	KwFalse

	// Punctuation / operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semi
	Assign
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	Plus
	Minus
	Star
	Slash
	Percent
	Not
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Amp
	Pipe
	Caret
	Shl
	Shr
	Ellipsis // ...
	PlusPlus
	MinusMinus
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INTLIT: "integer literal",
	FLOATLIT: "float literal",
	KwExport: "export", KwUniform: "uniform", KwVarying: "varying",
	KwVoid: "void", KwInt: "int", KwInt64: "int64", KwFloat: "float",
	KwDouble: "double", KwBool: "bool", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwForeach: "foreach", KwReturn: "return",
	KwTrue: "true", KwFalse: "false",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semi: ";",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=",
	Plus:        "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Not: "!", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", EqEq: "==", NotEq: "!=",
	AndAnd: "&&", OrOr: "||", Amp: "&", Pipe: "|", Caret: "^",
	Shl: "<<", Shr: ">>", Ellipsis: "...", PlusPlus: "++", MinusMinus: "--",
}

// String returns a human-readable token-kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"export": KwExport, "uniform": KwUniform, "varying": KwVarying,
	"void": KwVoid, "int": KwInt, "int64": KwInt64, "float": KwFloat,
	"double": KwDouble, "bool": KwBool, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "foreach": KwForeach,
	"return": KwReturn, "true": KwTrue, "false": KwFalse,
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String formats the position.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
	Int  int64
	Flt  float64
}
