package benchmarks

import (
	"math/rand"

	"vulfi/internal/exec"
)

// The three §IV-E micro-benchmarks used for the detector study (Fig 12).

const vectorCopySrc = `
// vector copy: the paper's Figure 6 kernel.
export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int n) {
	foreach (i = 0 ... n) {
		a2[i] = a1[i];
	}
	return;
}
`

// VectorCopy is the vcopy_ispc micro-benchmark (Figure 6).
var VectorCopy = &Benchmark{
	Name:      "VectorCopy",
	Suite:     "Micro",
	Entry:     "vcopy_ispc",
	Source:    vectorCopySrc,
	InputDesc: "1D array length: [64, 256]",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		n := pick(rng, microSizes(scale))
		in := randI32s(rng, n, -1000, 1000)
		_, a1, err := allocI32(x, in)
		if err != nil {
			return nil, err
		}
		outAddr, a2, err := allocI32(x, make([]int32, n))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(outAddr, n)},
			Label:   label("n=%d", n),
		}).withArgs(a1, a2, exec.I32Arg(int64(n))), nil
	},
}

const dotProductSrc = `
// dot product micro-benchmark: per-lane accumulation + reduction.
export void dotprod(uniform float a[], uniform float b[], uniform float out[],
		uniform int n) {
	varying float partial = 0.0;
	foreach (i = 0 ... n) {
		partial += a[i] * b[i];
	}
	uniform float total = reduce_add(partial);
	out[0] = total;
}
`

// DotProduct is the dot-product micro-benchmark.
var DotProduct = &Benchmark{
	Name:      "DotProduct",
	Suite:     "Micro",
	Entry:     "dotprod",
	Source:    dotProductSrc,
	InputDesc: "1D array length: [64, 256]",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		n := pick(rng, microSizes(scale))
		_, a, err := allocF32(x, randF32s(rng, n, -2, 2))
		if err != nil {
			return nil, err
		}
		_, b, err := allocF32(x, randF32s(rng, n, -2, 2))
		if err != nil {
			return nil, err
		}
		outAddr, out, err := allocF32(x, make([]float32, 1))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(outAddr, 1)},
			Label:   label("n=%d", n),
		}).withArgs(a, b, out, exec.I32Arg(int64(n))), nil
	},
}

const vectorSumSrc = `
// vector sum micro-benchmark.
export void vsum(uniform float a[], uniform float out[], uniform int n) {
	varying float partial = 0.0;
	foreach (i = 0 ... n) {
		partial += a[i];
	}
	out[0] = reduce_add(partial);
}
`

// VectorSum is the vector-sum micro-benchmark.
var VectorSum = &Benchmark{
	Name:      "VectorSum",
	Suite:     "Micro",
	Entry:     "vsum",
	Source:    vectorSumSrc,
	InputDesc: "1D array length: [64, 256]",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		n := pick(rng, microSizes(scale))
		_, a, err := allocF32(x, randF32s(rng, n, -10, 10))
		if err != nil {
			return nil, err
		}
		outAddr, out, err := allocF32(x, make([]float32, 1))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(outAddr, 1)},
			Label:   label("n=%d", n),
		}).withArgs(a, out, exec.I32Arg(int64(n))), nil
	},
}

func microSizes(scale Scale) []int {
	switch scale {
	case ScaleTest:
		// Both sizes carry a gang remainder, so the masked partial body
		// always executes at test scale.
		return []int{13, 19}
	case ScaleLarge:
		return []int{256, 1024}
	default:
		return []int{64, 100, 256}
	}
}
