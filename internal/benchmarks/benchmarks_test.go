package benchmarks

import (
	"math/rand"
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
)

// TestAllBenchmarksCompileAndRun compiles every benchmark for both ISAs
// and executes a clean run on a test-scale input.
func TestAllBenchmarksCompileAndRun(t *testing.T) {
	for _, b := range All() {
		for _, target := range isa.All {
			t.Run(b.Name+"/"+target.Name, func(t *testing.T) {
				res, err := codegen.CompileSource(b.Source, target, b.Name)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				x, err := exec.NewInstance(res, interp.Options{})
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(42))
				spec, err := b.Setup(x, rng, ScaleTest)
				if err != nil {
					t.Fatalf("setup: %v", err)
				}
				if _, tr := x.CallExport(b.Entry, spec.Args...); tr != nil {
					t.Fatalf("run (%s): %v", spec.Label, tr)
				}
				if x.It.DynInstrs == 0 {
					t.Fatal("no instructions executed")
				}
				if x.It.DynVector == 0 {
					t.Errorf("%s executed no vector instructions", b.Name)
				}
				for _, rg := range spec.Outputs {
					if _, err := x.ReadRaw(rg.Addr, rg.Size); err != nil {
						t.Fatalf("reading output region: %v", err)
					}
				}
			})
		}
	}
}

// TestBenchmarkDeterminism checks that the same seed yields bit-identical
// outputs across two fresh instances (the property the golden/faulty
// experiment pairing depends on).
func TestBenchmarkDeterminism(t *testing.T) {
	for _, b := range All() {
		t.Run(b.Name, func(t *testing.T) {
			res, err := codegen.CompileSource(b.Source, isa.AVX, b.Name)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var snaps [2][]byte
			for round := 0; round < 2; round++ {
				x, err := exec.NewInstance(res, interp.Options{})
				if err != nil {
					t.Fatal(err)
				}
				spec, err := b.Setup(x, rand.New(rand.NewSource(7)), ScaleTest)
				if err != nil {
					t.Fatal(err)
				}
				if _, tr := x.CallExport(b.Entry, spec.Args...); tr != nil {
					t.Fatalf("run: %v", tr)
				}
				var all []byte
				for _, rg := range spec.Outputs {
					bts, err := x.ReadRaw(rg.Addr, rg.Size)
					if err != nil {
						t.Fatal(err)
					}
					all = append(all, bts...)
				}
				all = append(all, x.It.Output.Bytes()...)
				snaps[round] = all
			}
			if string(snaps[0]) != string(snaps[1]) {
				t.Fatal("outputs differ across identical runs")
			}
		})
	}
}

// TestSortingSorts validates the sorting kernel end to end.
func TestSortingSorts(t *testing.T) {
	res, err := codegen.CompileSource(Sorting.Source, isa.AVX, "sorting")
	if err != nil {
		t.Fatal(err)
	}
	x, err := exec.NewInstance(res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := []int32{9, -3, 5, 0, 22, -7, 5, 1, 13, 2, -1, 4, 8, 3, 17, -20}
	addr, err := x.AllocI32(in)
	if err != nil {
		t.Fatal(err)
	}
	outAddr, err := x.AllocI32(make([]int32, len(in)))
	if err != nil {
		t.Fatal(err)
	}
	if _, tr := x.CallExport("sortphases", exec.PtrArgI32(addr),
		exec.PtrArgI32(outAddr), exec.I32Arg(int64(len(in)))); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	got, err := x.ReadI32(outAddr, len(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("not sorted at %d: %v", i, got)
		}
	}
}
