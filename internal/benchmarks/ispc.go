package benchmarks

import (
	"math/rand"

	"vulfi/internal/exec"
)

// The four benchmarks drawn from the ISPC compiler's example suite.

const blackscholesSrc = `
// Black-Scholes European option pricing (ISPC example): cumulative normal
// distribution via the Abramowitz-Stegun polynomial, call/put selection
// under a varying branch.
float cndf(varying float x) {
	varying float sign = 1.0;
	varying float ax = x;
	if (ax < 0.0) {
		ax = -ax;
		sign = -1.0;
	}
	varying float k = 1.0 / (1.0 + 0.2316419 * ax);
	varying float poly = k * (0.319381530 + k * (-0.356563782 +
		k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
	varying float cnd = 1.0 - 0.39894228 * exp(-0.5 * ax * ax) * poly;
	varying float result = cnd;
	if (sign < 0.0) {
		result = 1.0 - cnd;
	}
	return result;
}

export void blackscholes(uniform float sptprice[], uniform float strike[],
		uniform float rate[], uniform float volatility[], uniform float otime[],
		uniform int otype[], uniform float prices[], uniform int n) {
	foreach (i = 0 ... n) {
		varying float S = sptprice[i];
		varying float X = strike[i];
		varying float r = rate[i];
		varying float v = volatility[i];
		varying float T = otime[i];
		varying float sqrtT = sqrt(T);
		varying float d1 = (log(S / X) + (r + 0.5 * v * v) * T) / (v * sqrtT);
		varying float d2 = d1 - v * sqrtT;
		varying float nd1 = cndf(d1);
		varying float nd2 = cndf(d2);
		varying float futureValue = X * exp(-r * T);
		varying float price = S * nd1 - futureValue * nd2;
		if (otype[i] == 1) {
			price = futureValue * (1.0 - nd2) - S * (1.0 - nd1);
		}
		prices[i] = price;
	}
}
`

// Blackscholes is the ISPC Black-Scholes option-pricing benchmark.
var Blackscholes = &Benchmark{
	Name:      "Blackscholes",
	Suite:     "ISPC",
	Entry:     "blackscholes",
	Source:    blackscholesSrc,
	InputDesc: "options: sim small/medium/large (scaled)",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		var sizes []int
		switch scale {
		case ScaleTest:
			sizes = []int{13}
		case ScaleLarge:
			sizes = []int{512, 1024}
		default:
			sizes = []int{48, 96, 192}
		}
		n := pick(rng, sizes)
		_, sp, err := allocF32(x, randF32s(rng, n, 10, 150))
		if err != nil {
			return nil, err
		}
		_, st, err := allocF32(x, randF32s(rng, n, 10, 150))
		if err != nil {
			return nil, err
		}
		_, ra, err := allocF32(x, randF32s(rng, n, 0.01, 0.1))
		if err != nil {
			return nil, err
		}
		_, vo, err := allocF32(x, randF32s(rng, n, 0.1, 0.6))
		if err != nil {
			return nil, err
		}
		_, ot, err := allocF32(x, randF32s(rng, n, 0.2, 2))
		if err != nil {
			return nil, err
		}
		_, ty, err := allocI32(x, randI32s(rng, n, 0, 2))
		if err != nil {
			return nil, err
		}
		prAddr, pr, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(prAddr, n)},
			Label:   label("n=%d", n),
		}).withArgs(sp, st, ra, vo, ot, ty, pr, exec.I32Arg(int64(n))), nil
	},
}

const sortingSrc = `
// Odd-even transposition sort (vectorized compare-exchange over strided
// pairs; gathers and scatters dominate, making it address-site heavy),
// followed by the output-writing pass of the ISPC sorting example (a
// unit-stride copy whose values are pure data).
export void sortphases(uniform int a[], uniform int out[], uniform int n) {
	for (uniform int p = 0; p < n; p++) {
		uniform int off = p % 2;
		uniform int m = (n - off) / 2;
		foreach (i = 0 ... m) {
			varying int j = 2 * i + off;
			varying int lo = a[j];
			varying int hi = a[j + 1];
			if (lo > hi) {
				a[j] = hi;
				a[j + 1] = lo;
			}
		}
	}
	foreach (q = 0 ... n) {
		out[q] = a[q];
	}
}
`

// Sorting is the ISPC sorting benchmark (odd-even transposition).
var Sorting = &Benchmark{
	Name:      "Sorting",
	Suite:     "ISPC",
	Entry:     "sortphases",
	Source:    sortingSrc,
	InputDesc: "1D array length: [32, 96] (paper: [1000, 100000])",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		var sizes []int
		switch scale {
		case ScaleTest:
			sizes = []int{16}
		case ScaleLarge:
			sizes = []int{256, 512}
		default:
			sizes = []int{32, 64, 96}
		}
		n := pick(rng, sizes)
		addr, a, err := allocI32(x, randI32s(rng, n, -10000, 10000))
		if err != nil {
			return nil, err
		}
		outAddr, out, err := allocI32(x, make([]int32, n))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(addr, n), f32Region(outAddr, n)},
			Label:   label("n=%d", n),
		}).withArgs(a, out, exec.I32Arg(int64(n))), nil
	},
}

const stencilSrc = `
// 2D 5-point stencil sweep with double buffering (ISPC stencil example,
// reduced from 3D to 2D).
export void stencil2d(uniform float a[], uniform float b[], uniform int w,
		uniform int h, uniform int iters) {
	for (uniform int t = 0; t < iters; t++) {
		for (uniform int y = 1; y < h - 1; y++) {
			uniform int row = y * w;
			foreach (i = 1 ... w - 1) {
				b[row + i] = 0.2 * (a[row + i] + a[row + i - 1] + a[row + i + 1]
					+ a[row + i - w] + a[row + i + w]);
			}
		}
		for (uniform int y2 = 1; y2 < h - 1; y2++) {
			uniform int row2 = y2 * w;
			foreach (j = 1 ... w - 1) {
				a[row2 + j] = b[row2 + j];
			}
		}
	}
}
`

// Stencil is the ISPC stencil benchmark (2D 5-point sweep).
var Stencil = &Benchmark{
	Name:      "Stencil",
	Suite:     "ISPC",
	Entry:     "stencil2d",
	Source:    stencilSrc,
	InputDesc: "2D array dimension: 12x12 - 20x20 (paper: 16x16 - 64x64)",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		var dims []int
		iters := 2
		switch scale {
		case ScaleTest:
			dims = []int{10}
			iters = 1
		case ScaleLarge:
			dims = []int{32, 64}
		default:
			dims = []int{12, 16, 20}
		}
		d := pick(rng, dims)
		n := d * d
		aAddr, a, err := allocF32(x, randF32s(rng, n, 0, 1))
		if err != nil {
			return nil, err
		}
		_, b, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(aAddr, n)},
			Label:   label("%dx%d iters=%d", d, d, iters),
		}).withArgs(a, b, exec.I32Arg(int64(d)), exec.I32Arg(int64(d)),
			exec.I32Arg(int64(iters))), nil
	},
}

const raytracingSrc = `
// Sphere ray tracer: one ray per pixel, uniform loop over the sphere
// list, varying hit updates; depth buffer output (reduced from the ISPC
// rt example's BVH to a sphere list).
export void raytrace(uniform float cx[], uniform float cy[], uniform float cz[],
		uniform float cr[], uniform int ns, uniform float img[],
		uniform int w, uniform int h) {
	for (uniform int y = 0; y < h; y++) {
		uniform int row = y * w;
		foreach (i = 0 ... w) {
			varying float px = ((float)i + 0.5) / (float)w - 0.5;
			varying float py = ((float)y + 0.5) / (float)h - 0.5;
			varying float pz = 1.0;
			varying float invLen = rsqrt(px * px + py * py + pz * pz);
			varying float dx = px * invLen;
			varying float dy = py * invLen;
			varying float dz = pz * invLen;
			varying float tmin = 1000000.0;
			for (uniform int s = 0; s < ns; s++) {
				varying float ox = 0.0 - cx[s];
				varying float oy = 0.0 - cy[s];
				varying float oz = 0.0 - cz[s];
				varying float bq = ox * dx + oy * dy + oz * dz;
				varying float cq = ox * ox + oy * oy + oz * oz - cr[s] * cr[s];
				varying float disc = bq * bq - cq;
				if (disc > 0.0) {
					varying float t0 = -bq - sqrt(disc);
					if (t0 > 0.001 && t0 < tmin) {
						tmin = t0;
					}
				}
			}
			varying float shade = 0.0;
			if (tmin < 1000000.0) {
				shade = 1.0 / (1.0 + tmin);
			}
			img[row + i] = shade;
		}
	}
}
`

// Raytracing is the sphere ray-tracing benchmark.
var Raytracing = &Benchmark{
	Name:      "Raytracing",
	Suite:     "ISPC",
	Entry:     "raytrace",
	Source:    raytracingSrc,
	InputDesc: "camera input: 3 synthetic scenes (paper: Sponza/Teapot/Cornell)",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		type scene struct{ w, h, ns int }
		var scenes []scene
		switch scale {
		case ScaleTest:
			scenes = []scene{{10, 6, 3}}
		case ScaleLarge:
			scenes = []scene{{64, 48, 16}, {80, 60, 24}}
		default:
			scenes = []scene{{16, 12, 6}, {20, 14, 8}, {24, 16, 10}}
		}
		sc := scenes[rng.Intn(len(scenes))]
		_, cx, err := allocF32(x, randF32s(rng, sc.ns, -0.5, 0.5))
		if err != nil {
			return nil, err
		}
		_, cy, err := allocF32(x, randF32s(rng, sc.ns, -0.5, 0.5))
		if err != nil {
			return nil, err
		}
		_, cz, err := allocF32(x, randF32s(rng, sc.ns, 2, 6))
		if err != nil {
			return nil, err
		}
		_, cr, err := allocF32(x, randF32s(rng, sc.ns, 0.2, 0.9))
		if err != nil {
			return nil, err
		}
		imgAddr, img, err := allocF32(x, make([]float32, sc.w*sc.h))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(imgAddr, sc.w*sc.h)},
			Label:   label("%dx%d ns=%d", sc.w, sc.h, sc.ns),
		}).withArgs(cx, cy, cz, cr, exec.I32Arg(int64(sc.ns)), img,
			exec.I32Arg(int64(sc.w)), exec.I32Arg(int64(sc.h))), nil
	},
}
