// Package benchmarks implements the paper's evaluation workloads (Table
// I) as VSPC kernels: the PARVEC pair (fluidanimate, swaptions), the ISPC
// examples (blackscholes, sorting, stencil, ray tracing), the SCL trio
// (chebyshev, jacobi, conjugate gradient), and the three §IV-E
// micro-benchmarks (vector copy, dot product, vector sum).
//
// The kernels keep the computational character of the originals
// (array-intensive vs compute-intensive, control-heavy vs straight-line)
// at simulator-friendly input sizes; each Setup picks one input from a
// predefined set at random, as the paper's execution strategy does.
package benchmarks

import (
	"fmt"
	"math/rand"

	"vulfi/internal/exec"
	"vulfi/internal/interp"
)

// Scale selects the input-size regime.
type Scale int

// Scales: Test keeps unit tests fast; Default drives the fault-injection
// study; Large stretches toward the paper's input shapes.
const (
	ScaleTest Scale = iota
	ScaleDefault
	ScaleLarge
)

// String names the scale with the spelling the service spec and CLIs
// parse (server.ParseScale round-trips it).
func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleLarge:
		return "large"
	default:
		return "default"
	}
}

// Region is a memory range compared between golden and faulty runs.
// When Quantize is nonzero the range is interpreted as float32 cells and
// quantized to that step before comparison — modeling benchmarks whose
// observable output is printed with limited precision (PARSEC swaptions
// prices, solver residuals), which the paper's output comparison
// inherits.
type Region struct {
	Addr     uint64
	Size     uint64
	Quantize float32
}

// RunSpec is a prepared invocation: entry arguments plus the output
// regions whose bytes define the program's observable result.
type RunSpec struct {
	Args    []interp.Value
	Outputs []Region
	Label   string
}

// withArgs sets the spec's arguments and returns it (builder sugar).
func (s *RunSpec) withArgs(args ...interp.Value) *RunSpec {
	s.Args = args
	return s
}

// Benchmark is one workload.
type Benchmark struct {
	Name   string
	Suite  string
	Entry  string
	Source string
	// InputDesc describes the Table I input set.
	InputDesc string
	// Setup allocates one randomly chosen input in the instance's memory
	// and returns the invocation spec.
	Setup func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error)
}

// registry holds all benchmarks in the paper's Table I order followed by
// the micro-benchmarks.
var registry []*Benchmark

func init() {
	registry = []*Benchmark{
		Fluidanimate, Swaptions,
		Blackscholes, Sorting, Stencil, Raytracing,
		Chebyshev, Jacobi, ConjugateGradient,
		VectorCopy, DotProduct, VectorSum,
		Mandelbrot,
	}
}

// All returns every benchmark in registration (Table I) order.
func All() []*Benchmark {
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	return out
}

// Study returns the nine Table I benchmarks (no micro-benchmarks, no
// extension extras).
func Study() []*Benchmark {
	var out []*Benchmark
	for _, b := range registry {
		switch b.Suite {
		case "Parvec", "ISPC", "SCL":
			out = append(out, b)
		}
	}
	return out
}

// Micro returns the three §IV-E micro-benchmarks.
func Micro() []*Benchmark {
	var out []*Benchmark
	for _, b := range registry {
		if b.Suite == "Micro" {
			out = append(out, b)
		}
	}
	return out
}

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// pick selects one element of xs with rng (deterministic per seed).
func pick(rng *rand.Rand, xs []int) int { return xs[rng.Intn(len(xs))] }

// randF32s fills a deterministic pseudo-random float32 slice in [lo, hi).
func randF32s(rng *rand.Rand, n int, lo, hi float64) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return out
}

// randI32s fills a deterministic pseudo-random int32 slice in [lo, hi).
func randI32s(rng *rand.Rand, n int, lo, hi int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = lo + int32(rng.Intn(int(hi-lo)))
	}
	return out
}

// allocF32 allocates and returns both the address and a pointer argument.
func allocF32(x *exec.Instance, data []float32) (uint64, interp.Value, error) {
	addr, err := x.AllocF32(data)
	if err != nil {
		return 0, interp.Value{}, err
	}
	return addr, exec.PtrArgF32(addr), nil
}

func allocI32(x *exec.Instance, data []int32) (uint64, interp.Value, error) {
	addr, err := x.AllocI32(data)
	if err != nil {
		return 0, interp.Value{}, err
	}
	return addr, exec.PtrArgI32(addr), nil
}

func f32Region(addr uint64, n int) Region {
	return Region{Addr: addr, Size: uint64(4 * n)}
}

func label(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
