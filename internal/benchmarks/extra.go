package benchmarks

import (
	"math/rand"

	"vulfi/internal/exec"
)

// Extra benchmarks beyond the paper's Table I set, used by the extension
// studies (they are not part of Study()).

const mandelbrotSrc = `
// Mandelbrot escape-time iteration: the canonical SPMD divergence kernel,
// whose inner varying while runs as a mask loop — the workload for the
// mask-monotonicity detector extension.
export void mandelbrot(uniform float x0, uniform float y0,
		uniform float dx, uniform float dy,
		uniform int w, uniform int h, uniform int maxIters,
		uniform int out[]) {
	for (uniform int row = 0; row < h; row++) {
		uniform float cy = y0 + (float)row * dy;
		foreach (i = 0 ... w) {
			varying float cx = x0 + (float)i * dx;
			varying float zx = 0.0;
			varying float zy = 0.0;
			varying int iters = 0;
			while (zx * zx + zy * zy < 4.0 && iters < maxIters) {
				varying float nzx = zx * zx - zy * zy + cx;
				zy = 2.0 * zx * zy + cy;
				zx = nzx;
				iters = iters + 1;
			}
			out[row * w + i] = iters;
		}
	}
}
`

// Mandelbrot is the extension benchmark exercising varying-while mask
// loops (divergent per-lane iteration counts).
var Mandelbrot = &Benchmark{
	Name:      "Mandelbrot",
	Suite:     "Extra",
	Entry:     "mandelbrot",
	Source:    mandelbrotSrc,
	InputDesc: "image: {16x12, 24x16}, maxIters {24, 48}",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		type cfg struct{ w, h, iters int }
		var cfgs []cfg
		switch scale {
		case ScaleTest:
			cfgs = []cfg{{10, 6, 12}}
		case ScaleLarge:
			cfgs = []cfg{{64, 48, 64}}
		default:
			cfgs = []cfg{{16, 12, 24}, {24, 16, 48}}
		}
		c := cfgs[rng.Intn(len(cfgs))]
		outAddr, out, err := allocI32(x, make([]int32, c.w*c.h))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(outAddr, c.w*c.h)},
			Label:   label("%dx%d iters=%d", c.w, c.h, c.iters),
		}).withArgs(
			exec.F32Arg(-2.1), exec.F32Arg(-1.2),
			exec.F32Arg(3.0/float64(c.w)), exec.F32Arg(2.4/float64(c.h)),
			exec.I32Arg(int64(c.w)), exec.I32Arg(int64(c.h)),
			exec.I32Arg(int64(c.iters)), out), nil
	},
}
