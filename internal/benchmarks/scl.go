package benchmarks

import (
	"math/rand"

	"vulfi/internal/exec"
)

// The three benchmarks implementing SCL (Burkardt's scientific computing
// library) kernels, per the paper our own vectorized implementations.

const chebyshevSrc = `
// Chebyshev series evaluation via the three-term recurrence
// T_{k+1}(x) = 2 x T_k(x) - T_{k-1}(x).
export void chebeval(uniform float coef[], uniform int degree,
		uniform float xs[], uniform float out[], uniform int n) {
	foreach (i = 0 ... n) {
		varying float xv = xs[i];
		varying float tprev = 1.0;
		varying float tcur = xv;
		varying float s = coef[0] + coef[1] * xv;
		for (uniform int k = 2; k <= degree; k++) {
			varying float tn = 2.0 * xv * tcur - tprev;
			s += coef[k] * tn;
			tprev = tcur;
			tcur = tn;
		}
		out[i] = s;
	}
}
`

// Chebyshev is the SCL Chebyshev-evaluation benchmark.
var Chebyshev = &Benchmark{
	Name:      "Chebyshev",
	Suite:     "SCL",
	Entry:     "chebeval",
	Source:    chebyshevSrc,
	InputDesc: "degree: [8, 64] (paper: [1, 256])",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		var degrees []int
		n := 40
		switch scale {
		case ScaleTest:
			degrees = []int{6}
			n = 13
		case ScaleLarge:
			degrees = []int{128, 256}
			n = 256
		default:
			degrees = []int{8, 24, 64}
		}
		deg := pick(rng, degrees)
		_, coef, err := allocF32(x, randF32s(rng, deg+1, -1, 1))
		if err != nil {
			return nil, err
		}
		_, xs, err := allocF32(x, randF32s(rng, n, -1, 1))
		if err != nil {
			return nil, err
		}
		outAddr, out, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(outAddr, n)},
			Label:   label("degree=%d n=%d", deg, n),
		}).withArgs(coef, exec.I32Arg(int64(deg)), xs, out,
			exec.I32Arg(int64(n))), nil
	},
}

const jacobiSrc = `
// Jacobi iteration for the 2D Poisson problem with double buffering.
export void jacobi2d(uniform float u[], uniform float tmp[], uniform float f[],
		uniform int w, uniform int h, uniform int iters) {
	for (uniform int t = 0; t < iters; t++) {
		for (uniform int y = 1; y < h - 1; y++) {
			uniform int row = y * w;
			foreach (i = 1 ... w - 1) {
				tmp[row + i] = 0.25 * (u[row + i - 1] + u[row + i + 1]
					+ u[row + i - w] + u[row + i + w] + f[row + i]);
			}
		}
		for (uniform int y2 = 1; y2 < h - 1; y2++) {
			uniform int row2 = y2 * w;
			foreach (j = 1 ... w - 1) {
				u[row2 + j] = tmp[row2 + j];
			}
		}
	}
}
`

// Jacobi is the SCL Jacobi iterative-solver benchmark.
var Jacobi = &Benchmark{
	Name:      "Jacobi",
	Suite:     "SCL",
	Entry:     "jacobi2d",
	Source:    jacobiSrc,
	InputDesc: "2D array dimension: 12x12 - 20x20 (paper: 32x32 - 192x192)",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		var dims []int
		iters := 3
		switch scale {
		case ScaleTest:
			dims = []int{10}
			iters = 1
		case ScaleLarge:
			dims = []int{48, 96}
		default:
			dims = []int{12, 16, 20}
		}
		d := pick(rng, dims)
		n := d * d
		uAddr, u, err := allocF32(x, randF32s(rng, n, 0, 1))
		if err != nil {
			return nil, err
		}
		_, tmp, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		_, f, err := allocF32(x, randF32s(rng, n, -0.5, 0.5))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{f32Region(uAddr, n)},
			Label:   label("%dx%d iters=%d", d, d, iters),
		}).withArgs(u, tmp, f, exec.I32Arg(int64(d)), exec.I32Arg(int64(d)),
			exec.I32Arg(int64(iters))), nil
	},
}

const cgSrc = `
// Conjugate gradient on the implicit 2D 5-point Laplacian: interior-only
// matvec, dot products via per-lane accumulation + reduction.
export void cgsolve(uniform float b[], uniform float xv[], uniform float r[],
		uniform float p[], uniform float ap[], uniform int w, uniform int h,
		uniform int iters) {
	uniform int n = w * h;
	foreach (i = 0 ... n) {
		r[i] = b[i];
		p[i] = b[i];
		xv[i] = 0.0;
		ap[i] = 0.0;
	}
	varying float acc0 = 0.0;
	foreach (i2 = 0 ... n) {
		acc0 += r[i2] * r[i2];
	}
	uniform float rsold = reduce_add(acc0);
	for (uniform int it = 0; it < iters; it++) {
		for (uniform int y = 1; y < h - 1; y++) {
			uniform int row = y * w;
			foreach (i3 = 1 ... w - 1) {
				ap[row + i3] = 4.0 * p[row + i3] - p[row + i3 - 1]
					- p[row + i3 + 1] - p[row + i3 - w] - p[row + i3 + w];
			}
		}
		varying float acc1 = 0.0;
		for (uniform int y2 = 1; y2 < h - 1; y2++) {
			uniform int row2 = y2 * w;
			foreach (i4 = 1 ... w - 1) {
				acc1 += p[row2 + i4] * ap[row2 + i4];
			}
		}
		uniform float pap = reduce_add(acc1);
		uniform float alpha = rsold / (pap + 0.000001);
		for (uniform int y3 = 1; y3 < h - 1; y3++) {
			uniform int row3 = y3 * w;
			foreach (i5 = 1 ... w - 1) {
				xv[row3 + i5] += alpha * p[row3 + i5];
				r[row3 + i5] -= alpha * ap[row3 + i5];
			}
		}
		varying float acc2 = 0.0;
		for (uniform int y4 = 1; y4 < h - 1; y4++) {
			uniform int row4 = y4 * w;
			foreach (i6 = 1 ... w - 1) {
				acc2 += r[row4 + i6] * r[row4 + i6];
			}
		}
		uniform float rsnew = reduce_add(acc2);
		uniform float beta = rsnew / (rsold + 0.000001);
		for (uniform int y5 = 1; y5 < h - 1; y5++) {
			uniform int row5 = y5 * w;
			foreach (i7 = 1 ... w - 1) {
				p[row5 + i7] = r[row5 + i7] + beta * p[row5 + i7];
			}
		}
		rsold = rsnew;
	}
}
`

// ConjugateGradient is the SCL conjugate-gradient benchmark.
var ConjugateGradient = &Benchmark{
	Name:      "ConjugateGradient",
	Suite:     "SCL",
	Entry:     "cgsolve",
	Source:    cgSrc,
	InputDesc: "2D array dimension: 10x10 - 16x16 (paper: 32x32 - 256x256)",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		var dims []int
		iters := 6
		switch scale {
		case ScaleTest:
			dims = []int{10}
			iters = 2
		case ScaleLarge:
			dims = []int{32, 64}
		default:
			dims = []int{10, 12, 16}
		}
		d := pick(rng, dims)
		n := d * d
		_, b, err := allocF32(x, randF32s(rng, n, -1, 1))
		if err != nil {
			return nil, err
		}
		xAddr, xv, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		_, r, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		_, p, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		_, ap, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		// The solver's observable result is the solution to (reported)
		// tolerance; tiny transient perturbations below it are absorbed.
		out := f32Region(xAddr, n)
		out.Quantize = 1e-3
		return (&RunSpec{
			Outputs: []Region{out},
			Label:   label("%dx%d iters=%d", d, d, iters),
		}).withArgs(b, xv, r, p, ap, exec.I32Arg(int64(d)), exec.I32Arg(int64(d)),
			exec.I32Arg(int64(iters))), nil
	},
}
