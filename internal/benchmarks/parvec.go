package benchmarks

import (
	"math/rand"

	"vulfi/internal/exec"
)

// The two benchmarks drawn from the PARVEC suite (vectorized PARSEC).

const fluidanimateSrc = `
// Smoothed-particle fluid kernel (PARVEC fluidanimate, reduced to a 1D
// particle line with a fixed interaction window): density estimation,
// pressure forces, and symplectic integration.
export void fluidstep(uniform float pos[], uniform float vel[],
		uniform float dens[], uniform float acc[], uniform int n,
		uniform int window, uniform float h, uniform float dt) {
	uniform float h2 = h * h;
	// Density estimation over the interaction window.
	foreach (i = window ... n - window) {
		varying float pi = pos[i];
		varying float d = 0.0;
		for (uniform int k = -window; k <= window; k++) {
			varying float diff = pi - pos[i + k];
			varying float q = h2 - diff * diff;
			if (q > 0.0) {
				d += q * q * q;
			}
		}
		dens[i] = d;
	}
	// Pressure forces.
	foreach (i2 = window ... n - window) {
		varying float pi2 = pos[i2];
		varying float di = dens[i2];
		varying float a = 0.0;
		for (uniform int k2 = -window; k2 <= window; k2++) {
			varying float diff2 = pi2 - pos[i2 + k2];
			varying float q2 = h2 - diff2 * diff2;
			if (q2 > 0.0) {
				varying float press = di + dens[i2 + k2];
				a += press * q2 * diff2;
			}
		}
		acc[i2] = a * 0.05 - 0.1;
	}
	// Symplectic Euler integration.
	foreach (i3 = window ... n - window) {
		varying float v = vel[i3] + acc[i3] * dt;
		vel[i3] = v;
		pos[i3] = pos[i3] + v * dt;
	}
}
`

// Fluidanimate is the PARVEC fluidanimate benchmark (SPH kernel).
var Fluidanimate = &Benchmark{
	Name:      "Fluidanimate",
	Suite:     "Parvec",
	Entry:     "fluidstep",
	Source:    fluidanimateSrc,
	InputDesc: "particles: {64, 128} (paper: simsmall/simmedium)",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		var sizes []int
		switch scale {
		case ScaleTest:
			sizes = []int{24}
		case ScaleLarge:
			sizes = []int{512, 1024}
		default:
			sizes = []int{64, 128}
		}
		n := pick(rng, sizes)
		window := 2
		pos := make([]float32, n)
		for i := range pos {
			pos[i] = float32(i)*0.1 + float32(rng.Float64())*0.02
		}
		posAddr, posArg, err := allocF32(x, pos)
		if err != nil {
			return nil, err
		}
		velAddr, velArg, err := allocF32(x, randF32s(rng, n, -0.1, 0.1))
		if err != nil {
			return nil, err
		}
		densAddr, densArg, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		_, accArg, err := allocF32(x, make([]float32, n))
		if err != nil {
			return nil, err
		}
		return (&RunSpec{
			Outputs: []Region{
				f32Region(posAddr, n), f32Region(velAddr, n), f32Region(densAddr, n),
			},
			Label: label("n=%d", n),
		}).withArgs(posArg, velArg, densArg, accArg, exec.I32Arg(int64(n)),
			exec.I32Arg(int64(window)), exec.F32Arg(0.25), exec.F32Arg(0.01)), nil
	},
}

const swaptionsSrc = `
// Monte-Carlo swaption pricing (PARVEC swaptions, HJM reduced to a
// one-factor short-rate simulation with a per-lane LCG).
export void swaptions(uniform float strike[], uniform float years[],
		uniform float prices[], uniform float stderrs[], uniform int n,
		uniform int trials, uniform int steps, uniform int seed) {
	foreach (i = 0 ... n) {
		varying int state = seed + i * 747796405;
		varying float sum = 0.0;
		varying float sum2 = 0.0;
		for (uniform int t = 0; t < trials; t++) {
			// Evolve a four-tenor forward curve (as HJM evolves the whole
			// curve); the swaption payoff below prices only the short
			// tenor, so most of the curve evolution does not feed the
			// reported output — the structure that makes the original
			// benchmark unusually fault-resilient.
			varying float r0 = 0.05;
			varying float r1 = 0.052;
			varying float r2 = 0.055;
			varying float r3 = 0.06;
			for (uniform int s = 0; s < steps; s++) {
				state = state * 1103515245 + 12345;
				varying int u0 = (state >> 16) & 32767;
				varying float z0 = ((float)u0 / 32768.0) - 0.5;
				state = state * 1103515245 + 12345;
				varying int u1 = (state >> 16) & 32767;
				varying float z1 = ((float)u1 / 32768.0) - 0.5;
				r0 = r0 + 0.1 * z0 * 0.05;
				r1 = r1 + 0.1 * z1 * 0.05 + 0.01 * z0 * 0.05;
				r2 = r2 + 0.08 * z1 * 0.05;
				r3 = r3 + 0.06 * z0 * 0.04 + 0.02 * z1 * 0.04;
				if (r0 < 0.001) {
					r0 = 0.001;
				}
				if (r1 < 0.001) {
					r1 = 0.001;
				}
				if (r2 < 0.001) {
					r2 = 0.001;
				}
				if (r3 < 0.001) {
					r3 = 0.001;
				}
			}
			varying float payoff = r0 - strike[i];
			if (payoff < 0.0) {
				payoff = 0.0;
			}
			varying float discounted = payoff * exp(-r0 * years[i]);
			sum += discounted;
			sum2 += discounted * discounted;
		}
		varying float mean = sum / (float)trials;
		varying float variance = sum2 / (float)trials - mean * mean;
		if (variance < 0.0) {
			variance = 0.0;
		}
		prices[i] = mean;
		stderrs[i] = sqrt(variance / (float)trials);
	}
}
`

// Swaptions is the PARVEC swaptions benchmark (Monte-Carlo pricing).
var Swaptions = &Benchmark{
	Name:      "Swaptions",
	Suite:     "Parvec",
	Entry:     "swaptions",
	Source:    swaptionsSrc,
	InputDesc: "swaptions: [8, 16], simulations: [16, 32] (paper: [16,64] x [100,200])",
	Setup: func(x *exec.Instance, rng *rand.Rand, scale Scale) (*RunSpec, error) {
		type cfg struct{ n, trials, steps int }
		var cfgs []cfg
		switch scale {
		case ScaleTest:
			cfgs = []cfg{{8, 4, 8}}
		case ScaleLarge:
			cfgs = []cfg{{32, 64, 32}, {64, 100, 32}}
		default:
			cfgs = []cfg{{8, 16, 8}, {16, 16, 12}}
		}
		c := cfgs[rng.Intn(len(cfgs))]
		_, st, err := allocF32(x, randF32s(rng, c.n, 0.03, 0.07))
		if err != nil {
			return nil, err
		}
		_, yr, err := allocF32(x, randF32s(rng, c.n, 1, 10))
		if err != nil {
			return nil, err
		}
		prAddr, pr, err := allocF32(x, make([]float32, c.n))
		if err != nil {
			return nil, err
		}
		seAddr, se, err := allocF32(x, make([]float32, c.n))
		if err != nil {
			return nil, err
		}
		// Prices and standard errors are reported to fixed precision (as
		// the PARSEC original prints them), so sub-precision
		// perturbations are not observable output corruption.
		out := f32Region(prAddr, c.n)
		out.Quantize = 1e-4
		outSE := f32Region(seAddr, c.n)
		outSE.Quantize = 1e-2
		return (&RunSpec{
			Outputs: []Region{out, outSE},
			Label:   label("n=%d trials=%d steps=%d", c.n, c.trials, c.steps),
		}).withArgs(st, yr, pr, se, exec.I32Arg(int64(c.n)),
			exec.I32Arg(int64(c.trials)), exec.I32Arg(int64(c.steps)),
			exec.I32Arg(int64(rng.Intn(1<<30)))), nil
	},
}
