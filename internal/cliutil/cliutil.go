// Package cliutil registers the canonical command-line flags shared by
// the vulfi binaries (vulfi, vulfid, experiments, vspcc), so every tool
// spells each knob the same way — -benchmark, -isa, -category, -seed,
// -inputs, ... — with one usage string per knob. Per-binary defaults
// stay with the caller (experiments seeds with the paper date, vspcc
// has no default benchmark), but a flag's name and meaning never drift
// between tools.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vulfi/internal/buildinfo"
	"vulfi/internal/telemetry"
)

// Version registers the canonical -version flag; pair it with
// PrintVersion right after flag parsing.
func Version(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build provenance (version, toolchain, commit) and exit")
}

// PrintVersion writes the tool's one-line build stamp — module version,
// Go toolchain, and the VCS revision with a dirty bit when the binary
// was built inside a checkout.
func PrintVersion(w io.Writer, tool string) {
	fmt.Fprintf(w, "%s: %s\n", tool, buildinfo.String())
}

// Benchmark registers the canonical -benchmark flag.
func Benchmark(fs *flag.FlagSet, def string) *string {
	return fs.String("benchmark", def, "built-in benchmark name (see 'vulfi -list')")
}

// ISA registers the canonical -isa flag. Binaries that accept "all
// ISAs" pass an empty default.
func ISA(fs *flag.FlagSet, def string) *string {
	return fs.String("isa", def, "target ISA: AVX or SSE")
}

// Category registers the canonical -category flag.
func Category(fs *flag.FlagSet) *string {
	return fs.String("category", "pure-data", "fault-site category: pure-data, control, address")
}

// Experiments registers the canonical -experiments flag (paper: 100
// per campaign).
func Experiments(fs *flag.FlagSet) *int {
	return fs.Int("experiments", 100, "experiments per campaign")
}

// Campaigns registers the canonical -campaigns flag (paper: 20).
func Campaigns(fs *flag.FlagSet) *int {
	return fs.Int("campaigns", 20, "number of campaigns")
}

// Seed registers the canonical -seed flag.
func Seed(fs *flag.FlagSet, def int64) *int64 {
	return fs.Int64("seed", def, "study seed (the whole schedule is deterministic under it)")
}

// Workers registers the canonical -workers flag.
func Workers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "experiment parallelism (0 = NumCPU)")
}

// Inputs registers the canonical -inputs flag: the input-pool size K
// that enables golden-run memoization.
func Inputs(fs *flag.FlagSet) *int {
	return fs.Int("inputs", 0, "input-pool size K: experiment i draws input i mod K and golden runs are memoized (0 = fresh input per experiment, 1 = paper-faithful fixed input)")
}

// Backend registers the canonical -backend flag selecting the
// execution backend.
func Backend(fs *flag.FlagSet) *string {
	return fs.String("backend", "", "execution backend: tree (reference interpreter) or vm (compiled bytecode; same results, faster)")
}

// Timeline registers the canonical -timeline flag. The flag name is
// deliberately the same word as the vulfid spec knob ("timeline") so
// the CLI and the wire API never spell the feature differently; the
// drift test pins both.
func Timeline(fs *flag.FlagSet) *string {
	return fs.String("timeline", "", "trace the study's span timeline: write Chrome trace-event JSON to FILE (load in Perfetto) and the raw spans to FILE.jsonl; with -remote the client's root span parents the daemon's spans in one merged trace")
}

// Shards registers the canonical -shards flag. Like -timeline, the
// flag name matches the vulfid spec knob ("shards") exactly, pinned by
// the drift test.
func Shards(fs *flag.FlagSet) *int {
	return fs.Int("shards", 0, "split the study into about N shards across a coordinator's worker fleet (requires -remote to a vulfid started with -coordinator)")
}

// APIKey registers the canonical -api-key flag for clients of an
// authenticated vulfid.
func APIKey(fs *flag.FlagSet) *string {
	return fs.String("api-key", "", "API key presented to the remote vulfid (required when the daemon runs with -api-key)")
}

// MutuallyExclusive renders the canonical error for two flags that
// cannot be combined; hint explains why or what to do instead.
func MutuallyExclusive(a, b, hint string) error {
	return fmt.Errorf("-%s cannot be combined with -%s (%s)", a, b, hint)
}

// Requires renders the canonical error for a flag that only works in
// combination with another.
func Requires(name, needs, hint string) error {
	return fmt.Errorf("-%s requires -%s (%s)", name, needs, hint)
}

// Detectors registers the canonical detector pair: -detectors and
// -broadcast-detector.
func Detectors(fs *flag.FlagSet) (detectors, broadcast *bool) {
	detectors = fs.Bool("detectors", false, "insert the foreach-invariant detectors")
	broadcast = fs.Bool("broadcast-detector", false, "also insert the uniform-broadcast checker")
	return detectors, broadcast
}

// Large registers the canonical -large flag.
func Large(fs *flag.FlagSet) *bool {
	return fs.Bool("large", false, "use large inputs")
}

// Telemetry is the shared observability flag group — -progress,
// -events and -http — registered identically by every campaign binary.
type Telemetry struct {
	Progress *bool
	Events   *string
	HTTP     *string
}

// TelemetryFlags registers the canonical telemetry flag group.
func TelemetryFlags(fs *flag.FlagSet) *Telemetry {
	return &Telemetry{
		Progress: fs.Bool("progress", false, "render live progress on stderr"),
		Events:   fs.String("events", "", "write structured JSONL spans to this file"),
		HTTP:     fs.String("http", "", "serve /metrics, /debug/vars and pprof on this address (e.g. :6060)"),
	}
}

// Start opens the -events sink and the -http telemetry server. It
// returns the event writer (nil unless -events was given) and a cleanup
// function — defer it — that flushes and closes the sink, reporting
// close errors to stderr.
func (t *Telemetry) Start(stderr io.Writer) (*telemetry.EventWriter, func(), error) {
	var ew *telemetry.EventWriter
	if *t.Events != "" {
		f, err := os.Create(*t.Events)
		if err != nil {
			return nil, func() {}, err
		}
		ew = telemetry.NewEventWriter(f)
	}
	if *t.HTTP != "" {
		_, url, err := telemetry.Serve(*t.HTTP, telemetry.Default())
		if err != nil {
			if ew != nil {
				ew.Close()
			}
			return nil, func() {}, err
		}
		fmt.Fprintf(stderr, "telemetry on %s/metrics (also /debug/vars, /debug/pprof)\n", url)
	}
	cleanup := func() {
		if ew != nil {
			if err := ew.Close(); err != nil {
				fmt.Fprintf(stderr, "events: %v\n", err)
			}
		}
	}
	return ew, cleanup, nil
}
