package cliutil

import (
	"flag"
	"testing"

	"vulfi/internal/server"
)

// registerVulfi, registerExperiments and registerVspcc mirror the exact
// cliutil calls each binary's main makes (cmd/vulfi, cmd/experiments,
// cmd/vspcc). If a binary adds, renames, or re-defaults a shared knob,
// update the mirror here AND the drift table below — that is the point:
// the table is the contract that shared knobs never diverge.
func registerVulfi(fs *flag.FlagSet) {
	Benchmark(fs, "VectorCopy")
	ISA(fs, "AVX")
	Category(fs)
	Experiments(fs)
	Campaigns(fs)
	Seed(fs, 1)
	Workers(fs)
	Inputs(fs)
	Backend(fs)
	Timeline(fs)
	Shards(fs)
	APIKey(fs)
	Detectors(fs)
	Large(fs)
	TelemetryFlags(fs)
	Version(fs)
}

func registerExperiments(fs *flag.FlagSet) {
	Seed(fs, 20160516)
	Workers(fs)
	Inputs(fs)
	Backend(fs)
	ISA(fs, "")
	Large(fs)
	TelemetryFlags(fs)
	Version(fs)
}

func registerVspcc(fs *flag.FlagSet) {
	Benchmark(fs, "")
	ISA(fs, "AVX")
	Version(fs)
}

// flagInfo captures the drift-relevant identity of a registered flag.
type flagInfo struct {
	usage string
	def   string
}

func flagsOf(reg func(*flag.FlagSet)) map[string]flagInfo {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	reg(fs)
	out := map[string]flagInfo{}
	fs.VisitAll(func(f *flag.Flag) {
		out[f.Name] = flagInfo{usage: f.Usage, def: f.DefValue}
	})
	return out
}

// TestSharedFlagsDoNotDrift: every shared knob is registered under the
// same name with the same usage string by every binary that has it, and
// defaults differ only where the table says a binary deliberately
// diverges (experiments seeds with the paper date; vspcc compiles a
// file argument by default).
func TestSharedFlagsDoNotDrift(t *testing.T) {
	bins := map[string]map[string]flagInfo{
		"vulfi":       flagsOf(registerVulfi),
		"experiments": flagsOf(registerExperiments),
		"vspcc":       flagsOf(registerVspcc),
	}

	shared := []struct {
		name     string
		bins     []string          // binaries that must register it
		defaults map[string]string // per-binary default; others must match vulfi
	}{
		{name: "benchmark", bins: []string{"vulfi", "vspcc"},
			defaults: map[string]string{"vulfi": "VectorCopy", "vspcc": ""}},
		{name: "isa", bins: []string{"vulfi", "experiments", "vspcc"},
			defaults: map[string]string{"vulfi": "AVX", "experiments": "", "vspcc": "AVX"}},
		{name: "category", bins: []string{"vulfi"}},
		{name: "experiments", bins: []string{"vulfi"}},
		{name: "campaigns", bins: []string{"vulfi"}},
		{name: "seed", bins: []string{"vulfi", "experiments"},
			defaults: map[string]string{"vulfi": "1", "experiments": "20160516"}},
		{name: "workers", bins: []string{"vulfi", "experiments"}},
		{name: "inputs", bins: []string{"vulfi", "experiments"}},
		{name: "backend", bins: []string{"vulfi", "experiments"}},
		{name: "timeline", bins: []string{"vulfi"}},
		{name: "shards", bins: []string{"vulfi"}},
		{name: "api-key", bins: []string{"vulfi"}},
		{name: "detectors", bins: []string{"vulfi"}},
		{name: "broadcast-detector", bins: []string{"vulfi"}},
		{name: "large", bins: []string{"vulfi", "experiments"}},
		{name: "progress", bins: []string{"vulfi", "experiments"}},
		{name: "events", bins: []string{"vulfi", "experiments"}},
		{name: "http", bins: []string{"vulfi", "experiments"}},
		{name: "version", bins: []string{"vulfi", "experiments", "vspcc"}},
	}

	// CLI flags that mirror a vulfid spec knob must use the knob's exact
	// JSON name — the same word on the command line and on the wire.
	specKnobs := map[string]bool{}
	for _, f := range server.SpecFields() {
		specKnobs[f] = true
	}
	for _, name := range []string{
		"benchmark", "isa", "category", "experiments", "campaigns",
		"seed", "workers", "inputs", "backend", "detectors", "timeline",
		"shards",
	} {
		if _, ok := bins["vulfi"][name]; !ok {
			t.Errorf("vulfi does not register -%s", name)
		}
		if !specKnobs[name] {
			t.Errorf("-%s has no matching vulfid spec knob %q (SpecFields: %v)",
				name, name, server.SpecFields())
		}
	}

	for _, knob := range shared {
		var refUsage string
		for i, bin := range knob.bins {
			fi, ok := bins[bin][knob.name]
			if !ok {
				t.Errorf("%s does not register -%s", bin, knob.name)
				continue
			}
			if i == 0 {
				refUsage = fi.usage
			} else if fi.usage != refUsage {
				t.Errorf("-%s usage drifts: %s says %q, %s says %q",
					knob.name, knob.bins[0], refUsage, bin, fi.usage)
			}
			if want, pinned := knob.defaults[bin]; pinned && fi.def != want {
				t.Errorf("%s -%s default = %q, want %q", bin, knob.name, fi.def, want)
			}
			if knob.defaults == nil && i > 0 {
				if ref := bins[knob.bins[0]][knob.name]; fi.def != ref.def {
					t.Errorf("-%s default drifts: %s has %q, %s has %q",
						knob.name, knob.bins[0], ref.def, bin, fi.def)
				}
			}
		}
	}
}
