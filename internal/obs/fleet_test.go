package obs

import (
	"reflect"
	"testing"
	"time"
)

// fleetEpoch anchors the synthetic coordinator timeline; shard
// timelines start later and must re-anchor against it.
var fleetEpoch = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// coordTimeline builds a minimal coordinator-side timeline: a study
// root on the control lane plus one dispatch span per shard range.
func coordTimeline(shardSpans ...Span) *Timeline {
	t := &Timeline{
		TraceID: "c0ffee", Root: "root00", Start: fleetEpoch,
		WallNS: 10_000, Lanes: []string{"control"},
		Spans: []Span{{Name: "study", ID: "root00", Lane: 0, StartNS: 0, DurNS: 10_000}},
	}
	t.Spans = append(t.Spans, shardSpans...)
	return t
}

// shardTimeline builds one harvested worker timeline whose study root
// carries the coordinator's dispatch span as its traceparent parent.
func shardTimeline(root, parent string, startOff int64, spanIDs ...string) *Timeline {
	t := &Timeline{
		TraceID: "c0ffee", Root: root, Parent: parent,
		Start:  fleetEpoch.Add(time.Duration(startOff)),
		WallNS: 2_000, Workers: 1,
		Lanes: []string{"control", "worker 0"},
		Spans: []Span{{Name: "study", ID: root, Parent: parent, Lane: 0, StartNS: 0, DurNS: 2_000}},
	}
	for i, id := range spanIDs {
		t.Spans = append(t.Spans, Span{
			Name: "experiment", ID: id, Parent: root, Lane: 1,
			StartNS: int64(100 * (i + 1)), DurNS: 50,
		})
	}
	return t
}

// TestMergeShardsLanesAndAnchoring: lane 0 renames to "coordinator",
// each worker gets one lane group named "<worker> <lane>", and shard
// span offsets re-anchor to the coordinator's epoch.
func TestMergeShardsLanesAndAnchoring(t *testing.T) {
	coord := coordTimeline(
		Span{Name: "shard[0,3)", ID: "sh0", Parent: "root00", Lane: 0, StartNS: 10, DurNS: 5000},
		Span{Name: "shard[3,5)", ID: "sh1", Parent: "root00", Lane: 0, StartNS: 10, DurNS: 4000},
	)
	m := MergeShards(coord, []ShardTimeline{
		{Worker: "w1", Timeline: shardTimeline("s0root", "sh0", 500, "e0", "e1")},
		{Worker: "w2", Timeline: shardTimeline("s1root", "sh1", 700, "e2")},
	})

	wantLanes := []string{"coordinator", "w1 control", "w1 worker 0", "w2 control", "w2 worker 0"}
	if !reflect.DeepEqual(m.Lanes, wantLanes) {
		t.Fatalf("merged lanes %v, want %v", m.Lanes, wantLanes)
	}
	if m.TraceID != coord.TraceID || m.Root != coord.Root {
		t.Fatalf("merged identity %s/%s, want coordinator's %s/%s",
			m.TraceID, m.Root, coord.TraceID, coord.Root)
	}
	if m.Workers != 2 {
		t.Fatalf("Workers = %d, want 2 (summed over shards)", m.Workers)
	}

	byID := map[string]Span{}
	for _, s := range m.Spans {
		byID[s.ID] = s
	}
	// w1's shard started 500ns after the coordinator epoch: its study
	// root moves from offset 0 to 500, its first experiment from 100 to
	// 600.
	if got := byID["s0root"].StartNS; got != 500 {
		t.Errorf("shard 0 root re-anchored to %d, want 500", got)
	}
	if got := byID["e0"].StartNS; got != 600 {
		t.Errorf("shard 0 experiment re-anchored to %d, want 600", got)
	}
	if got := byID["e2"].StartNS; got != 800 {
		t.Errorf("shard 1 experiment re-anchored to %d, want 800", got)
	}
	// Lane remapping: w2's worker-lane experiment lives on the "w2
	// worker 0" lane.
	if got, want := byID["e2"].Lane, 4; got != want {
		t.Errorf("e2 on lane %d (%q), want %d (%q)",
			got, m.Lanes[got], want, wantLanes[want])
	}
}

// TestMergeShardsJoinable: the merged span set forms one tree — every
// shard study root parents under the coordinator dispatch span named in
// its traceparent, so Perfetto's flow rendering can walk fleet-wide.
func TestMergeShardsJoinable(t *testing.T) {
	coord := coordTimeline(
		Span{Name: "shard[0,3)", ID: "sh0", Parent: "root00", Lane: 0, StartNS: 10, DurNS: 5000},
	)
	m := MergeShards(coord, []ShardTimeline{
		{Worker: "w1", Timeline: shardTimeline("s0root", "sh0", 500, "e0")},
	})
	parent := map[string]string{}
	for _, s := range m.Spans {
		parent[s.ID] = s.Parent
	}
	for id := range parent {
		// Walk to the root; every span must reach it through IDs present
		// in the merged set.
		seen := 0
		for cur := id; cur != "root00"; cur = parent[cur] {
			p, ok := parent[cur]
			if !ok {
				t.Fatalf("span %s dangles at %q (parent not merged)", id, cur)
			}
			if _, ok := parent[p]; !ok && p != "" {
				t.Fatalf("span %s has unmerged parent %q", cur, p)
			}
			if seen++; seen > len(parent) {
				t.Fatalf("parent cycle reaching %s", id)
			}
		}
	}
	if parent["s0root"] != "sh0" {
		t.Fatalf("shard root parents %q, want coordinator dispatch span sh0",
			parent["s0root"])
	}
}

// TestMergeShardsDuplicateRootDropped: a coordinator that restarts
// mid-study replays journaled shard observability and may harvest the
// same shard twice; the second copy (same study root ID) is a
// duplicate, not new work.
func TestMergeShardsDuplicateRootDropped(t *testing.T) {
	coord := coordTimeline(
		Span{Name: "shard[0,3)", ID: "sh0", Parent: "root00", Lane: 0, StartNS: 10, DurNS: 5000},
	)
	one := MergeShards(coord, []ShardTimeline{
		{Worker: "w1", Timeline: shardTimeline("s0root", "sh0", 500, "e0", "e1")},
	})
	dup := MergeShards(coord, []ShardTimeline{
		{Worker: "w1", Timeline: shardTimeline("s0root", "sh0", 500, "e0", "e1")},
		{Worker: "w1", Timeline: shardTimeline("s0root", "sh0", 900, "e0", "e1")},
		{Worker: "w9", Timeline: shardTimeline("s0root", "sh0", 900, "e0", "e1")},
	})
	if !reflect.DeepEqual(dup, one) {
		t.Fatalf("duplicate shard harvest changed the merge:\n got %+v\nwant %+v", dup, one)
	}
	if len(dup.Lanes) != 3 {
		t.Fatalf("duplicate harvest grew lanes: %v", dup.Lanes)
	}
}

// TestMergeShardsOutOfOrderHarvest: harvest order is coordinator
// scheduling noise. Shards arriving in any order produce the same span
// set (the merge sorts by start offset then ID); lane *naming* tracks
// first-seen worker order, so lane indices are remapped before
// comparing.
func TestMergeShardsOutOfOrderHarvest(t *testing.T) {
	coord := coordTimeline(
		Span{Name: "shard[0,3)", ID: "sh0", Parent: "root00", Lane: 0, StartNS: 10, DurNS: 5000},
		Span{Name: "shard[3,5)", ID: "sh1", Parent: "root00", Lane: 0, StartNS: 10, DurNS: 4000},
	)
	sh := []ShardTimeline{
		{Worker: "w1", Timeline: shardTimeline("s0root", "sh0", 500, "e0", "e1")},
		{Worker: "w2", Timeline: shardTimeline("s1root", "sh1", 700, "e2")},
	}
	fwd := MergeShards(coord, sh)
	rev := MergeShards(coord, []ShardTimeline{sh[1], sh[0]})

	canon := func(m *Timeline) []Span {
		out := make([]Span, len(m.Spans))
		for i, s := range m.Spans {
			if s.Lane >= 0 && s.Lane < len(m.Lanes) {
				s.Lane = 0 // compare by lane *name*, captured below
				s.Name = m.Lanes[m.Spans[i].Lane] + "/" + s.Name
			}
			out[i] = s
		}
		return out
	}
	if !reflect.DeepEqual(canon(fwd), canon(rev)) {
		t.Fatalf("harvest order changed the merged span set:\n fwd %+v\n rev %+v",
			canon(fwd), canon(rev))
	}
}

// TestMergeShardsNilTimelineSkipped: a shard whose worker died before
// observability harvest contributes no timeline; the merge tolerates
// the hole instead of panicking.
func TestMergeShardsNilTimelineSkipped(t *testing.T) {
	coord := coordTimeline()
	m := MergeShards(coord, []ShardTimeline{
		{Worker: "w1", Timeline: nil},
		{Worker: "w2", Timeline: shardTimeline("s0root", "", 100, "e0")},
	})
	if len(m.Lanes) != 3 || m.Lanes[1] != "w2 control" {
		t.Fatalf("nil shard timeline still claimed a lane: %v", m.Lanes)
	}
}

// TestMergeShardsSpanOrder: the merged stream is sorted by start offset
// with ID as the tiebreak — the stable order the JSONL export and the
// text digest rely on.
func TestMergeShardsSpanOrder(t *testing.T) {
	coord := coordTimeline(
		Span{Name: "shard[0,3)", ID: "sh0", Parent: "root00", Lane: 0, StartNS: 10, DurNS: 5000},
	)
	m := MergeShards(coord, []ShardTimeline{
		{Worker: "w1", Timeline: shardTimeline("s0root", "sh0", 5, "e0", "e1")},
	})
	for i := 1; i < len(m.Spans); i++ {
		a, b := m.Spans[i-1], m.Spans[i]
		if a.StartNS > b.StartNS || (a.StartNS == b.StartNS && a.ID > b.ID) {
			t.Fatalf("span %d (%s@%d) before span %d (%s@%d): not sorted",
				i-1, a.ID, a.StartNS, i, b.ID, b.StartNS)
		}
	}
}
