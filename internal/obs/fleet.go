package obs

import "sort"

// ShardTimeline is one harvested shard timeline plus its fleet identity:
// the display name of the worker that executed the shard ("local" for a
// shard the coordinator ran in-process).
type ShardTimeline struct {
	Worker   string
	Timeline *Timeline
}

// MergeShards folds harvested shard timelines into the coordinator's own
// timeline, producing one fleet-wide trace. The coordinator's spans
// (dispatch, harvest, merge) keep lane 0, renamed "coordinator"; each
// fleet worker gets one contiguous lane group, its lanes named
// "<worker> <lane>" ("w1 control", "w1 worker 0", …). Shards that ran on
// the same worker share that worker's lane group — shard jobs run
// sequentially on a worker, so their same-named lanes reuse one display
// row. Shard offsets re-anchor to the coordinator's epoch exactly as
// MergeRemote re-anchors a server timeline, and the span tree stays
// joinable by ID: each shard's study root is parented under the
// coordinator's per-shard dispatch span via traceparent.
//
// A shard timeline whose root span ID was already merged is skipped —
// that is a duplicate harvest (a coordinator restart replaying an
// already-journaled shard), not new work.
func MergeShards(coord *Timeline, shards []ShardTimeline) *Timeline {
	t := &Timeline{
		TraceID: coord.TraceID, Root: coord.Root, Parent: coord.Parent,
		Start: coord.Start, WallNS: coord.WallNS,
	}
	t.Lanes = append(t.Lanes, "coordinator")
	for i := 1; i < len(coord.Lanes); i++ {
		t.Lanes = append(t.Lanes, "coordinator "+coord.Lanes[i])
	}
	t.Spans = append(t.Spans, coord.Spans...)

	// Lane groups: first-seen worker order, one merged lane per distinct
	// (worker, lane name) pair.
	laneOf := map[[2]string]int{}
	var workerOrder []string
	seenWorker := map[string]bool{}
	seenRoot := map[string]bool{}
	grouped := map[string][]*Timeline{}
	for _, sh := range shards {
		if sh.Timeline == nil || seenRoot[sh.Timeline.Root] {
			continue
		}
		seenRoot[sh.Timeline.Root] = true
		if !seenWorker[sh.Worker] {
			seenWorker[sh.Worker] = true
			workerOrder = append(workerOrder, sh.Worker)
		}
		grouped[sh.Worker] = append(grouped[sh.Worker], sh.Timeline)
	}
	for _, w := range workerOrder {
		for _, tl := range grouped[w] {
			off := tl.Start.Sub(t.Start).Nanoseconds()
			for _, s := range tl.Spans {
				name := "?"
				if s.Lane >= 0 && s.Lane < len(tl.Lanes) {
					name = tl.Lanes[s.Lane]
				}
				key := [2]string{w, name}
				lane, ok := laneOf[key]
				if !ok {
					lane = len(t.Lanes)
					laneOf[key] = lane
					t.Lanes = append(t.Lanes, w+" "+name)
				}
				s.Lane = lane
				s.StartNS += off
				t.Spans = append(t.Spans, s)
			}
			t.Workers += tl.Workers
		}
	}
	sort.SliceStable(t.Spans, func(i, j int) bool {
		if t.Spans[i].StartNS != t.Spans[j].StartNS {
			return t.Spans[i].StartNS < t.Spans[j].StartNS
		}
		return t.Spans[i].ID < t.Spans[j].ID
	})
	return t
}
