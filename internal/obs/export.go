package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonlHeader is the first line of a JSONL export: the timeline's
// identity and shape, without the span array.
type jsonlHeader struct {
	Kind    string   `json:"kind"`
	TraceID string   `json:"trace_id"`
	Root    string   `json:"root"`
	Parent  string   `json:"parent,omitempty"`
	StartNS int64    `json:"start_unix_ns"`
	WallNS  int64    `json:"wall_ns"`
	Workers int      `json:"workers"`
	Lanes   []string `json:"lanes,omitempty"`
	Spans   int      `json:"spans"`
}

// WriteJSONL streams the timeline as JSON Lines: one header record
// (kind "timeline"), then one record per span in timeline order. Every
// record is a single line, so the stream survives line-oriented tools
// (grep, jq -c, tail -f).
func (t *Timeline) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := jsonlHeader{
		Kind: "timeline", TraceID: t.TraceID, Root: t.Root,
		Parent: t.Parent, StartNS: t.Start.UnixNano(),
		WallNS: t.WallNS, Workers: t.Workers, Lanes: t.Lanes,
		Spans: len(t.Spans),
	}
	if err := enc.Encode(h); err != nil {
		return err
	}
	for i := range t.Spans {
		if err := enc.Encode(&t.Spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// traceEvent is one Chrome trace-event record. TS/Dur are microseconds;
// fractional values carry the sub-microsecond part (Perfetto accepts
// decimals).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents serializes the timeline as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing: one complete ("X") event
// per span, one display lane (tid) per recording lane, lanes named via
// thread_name metadata. Span attrs plus the span/parent IDs ride in
// args so the trace stays joinable with the JSONL export.
func (t *Timeline) WriteTraceEvents(w io.Writer) error {
	f := traceFile{DisplayTimeUnit: "ms"}
	f.TraceEvents = make([]traceEvent, 0, len(t.Spans)+len(t.Lanes)+1)
	f.TraceEvents = append(f.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "vulfi campaign " + t.TraceID},
	})
	for lane, name := range t.Lanes {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: lane,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range t.Spans {
		args := map[string]any{"id": s.ID}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: s.Name, Cat: "vulfi", Ph: "X",
			TS: float64(s.StartNS) / 1e3, Dur: float64(s.DurNS) / 1e3,
			PID: 1, TID: s.Lane, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
