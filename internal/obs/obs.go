// Package obs is the campaign observatory's span layer: hierarchical
// wall-time spans (study → experiment → golden/faulty/compare, plus
// compile and cache-fill) recorded into per-worker lanes and merged into
// a Timeline that exports as JSONL or Chrome trace-event JSON (Perfetto).
//
// Span identities are deterministic: IDs derive from the study's
// deterministic seed schedule (FNV-1a over trace ID, span name and
// seed), never from timestamps or scheduling. Two runs of the same
// configuration therefore produce the same span *tree* — same IDs,
// parents, names and attributes — while lane assignment and timestamps
// remain scheduling-dependent. Canonical() projects a timeline onto that
// invariant subset for determinism tests.
//
// The recording discipline mirrors internal/profile's probe/collector
// pattern: each worker owns an unsynchronized Lane (created once, before
// the workers start), the control lane is mutex-guarded, and the merge
// happens once at study end. Stdlib-only by design.
package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed region of a campaign. StartNS is relative to the
// owning Timeline's Start so exported timelines are self-contained.
type Span struct {
	Name string `json:"name"`
	// ID is the span's deterministic 16-hex identity (DeriveSpanID).
	ID string `json:"id"`
	// Parent is the parent span's ID ("" for the root).
	Parent string `json:"parent,omitempty"`
	// Lane is the display lane: 0 is the control lane (compile, root),
	// 1..Workers are worker lanes, and merged remote timelines prepend a
	// client lane (see MergeRemote).
	Lane    int               `json:"lane"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Timeline is a merged span stream for one study (or one merged
// client+server remote study).
type Timeline struct {
	// TraceID is the W3C-style 32-hex trace identity shared by every
	// span; propagated across the vulfi ↔ vulfid boundary via
	// traceparent so remote spans join the client's trace.
	TraceID string `json:"trace_id"`
	// Root is the span ID of this timeline's root span.
	Root string `json:"root"`
	// Parent is the remote parent span ID carried in via traceparent
	// ("" when the study is its own root).
	Parent string `json:"parent,omitempty"`
	// Start anchors StartNS offsets to wall-clock time.
	Start time.Time `json:"start"`
	// WallNS is the root span's duration.
	WallNS int64 `json:"wall_ns"`
	// Workers is the number of worker lanes.
	Workers int `json:"workers"`
	// Lanes names each display lane; index = Span.Lane.
	Lanes []string `json:"lanes,omitempty"`
	Spans []Span   `json:"spans"`
}

// CanonicalSpan is a span projected onto its deterministic subset: no
// lane, no timestamps. Attrs must themselves be deterministic (the
// campaign layer only records schedule-derived attributes).
type CanonicalSpan struct {
	Name   string            `json:"name"`
	ID     string            `json:"id"`
	Parent string            `json:"parent,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Canonical returns the deterministic span tree: spans deduplicated by
// ID (golden cache-fill spans can legitimately repeat when evictions
// force refills — same derived ID, same work) and sorted by ID. Two
// runs of one configuration yield equal Canonical() regardless of
// worker count or scheduling.
func (t *Timeline) Canonical() []CanonicalSpan {
	seen := make(map[string]bool, len(t.Spans))
	out := make([]CanonicalSpan, 0, len(t.Spans))
	for _, s := range t.Spans {
		if seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		out = append(out, CanonicalSpan{
			Name: s.Name, ID: s.ID, Parent: s.Parent, Attrs: s.Attrs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lane is one worker's unsynchronized span buffer. A lane is owned by
// exactly one goroutine between Collector creation and Finish; Record
// is deliberately lock-free (the profile.Probe discipline).
type Lane struct {
	id    int
	epoch time.Time
	spans []Span
}

// Record appends one completed span to the lane.
func (l *Lane) Record(name, id, parent string, start time.Time, dur time.Duration, attrs map[string]string) {
	l.spans = append(l.spans, Span{
		Name: name, ID: id, Parent: parent, Lane: l.id,
		StartNS: start.Sub(l.epoch).Nanoseconds(),
		DurNS:   dur.Nanoseconds(),
		Attrs:   attrs,
	})
}

// Collector owns a study's lanes and merges them into a Timeline.
// Worker lanes are handed out up front (Lane method) and recorded into
// without synchronization; the control lane (compile, root, anything
// recorded outside the worker pool) is mutex-guarded.
type Collector struct {
	traceID string
	root    string
	parent  string
	epoch   time.Time

	mu    sync.Mutex
	ctl   Lane
	lanes []*Lane
}

// NewCollector builds a collector for the given trace identity.
// traceID/rootID address the study's root span; parentID is the remote
// parent from traceparent ("" for a local root). epoch anchors all
// span offsets (normally the moment Prepare starts, so the compile
// span sits at offset ~0).
func NewCollector(traceID, rootID, parentID string, workers int, epoch time.Time) *Collector {
	c := &Collector{
		traceID: traceID, root: rootID, parent: parentID, epoch: epoch,
		ctl: Lane{id: 0, epoch: epoch},
	}
	c.lanes = make([]*Lane, workers)
	for i := range c.lanes {
		c.lanes[i] = &Lane{id: i + 1, epoch: epoch}
	}
	return c
}

// TraceID returns the collector's trace identity.
func (c *Collector) TraceID() string { return c.traceID }

// Root returns the root span's ID.
func (c *Collector) Root() string { return c.root }

// Parent returns the remote parent span ID ("" for a local root).
func (c *Collector) Parent() string { return c.parent }

// NumLanes returns the number of worker lanes.
func (c *Collector) NumLanes() int { return len(c.lanes) }

// Lane returns worker w's lane (0-based). The lane must only be used
// from that worker's goroutine.
func (c *Collector) Lane(w int) *Lane { return c.lanes[w] }

// Ctl records one span on the control lane; safe for concurrent use.
func (c *Collector) Ctl(name, id, parent string, start time.Time, dur time.Duration, attrs map[string]string) {
	c.mu.Lock()
	c.ctl.Record(name, id, parent, start, dur, attrs)
	c.mu.Unlock()
}

// Finish merges every lane into a Timeline. wall is the root span's
// duration. Spans are ordered by start offset (ties by ID) so exports
// read chronologically.
func (c *Collector) Finish(wall time.Duration) *Timeline {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &Timeline{
		TraceID: c.traceID, Root: c.root, Parent: c.parent,
		Start: c.epoch, WallNS: wall.Nanoseconds(),
		Workers: len(c.lanes),
		Lanes:   make([]string, 0, len(c.lanes)+1),
	}
	t.Lanes = append(t.Lanes, "control")
	for i := range c.lanes {
		t.Lanes = append(t.Lanes, fmt.Sprintf("worker %d", i))
	}
	n := len(c.ctl.spans)
	for _, l := range c.lanes {
		n += len(l.spans)
	}
	t.Spans = make([]Span, 0, n)
	t.Spans = append(t.Spans, c.ctl.spans...)
	for _, l := range c.lanes {
		t.Spans = append(t.Spans, l.spans...)
	}
	sort.SliceStable(t.Spans, func(i, j int) bool {
		if t.Spans[i].StartNS != t.Spans[j].StartNS {
			return t.Spans[i].StartNS < t.Spans[j].StartNS
		}
		return t.Spans[i].ID < t.Spans[j].ID
	})
	return t
}

// MergeRemote nests a server-produced timeline under a client-side root
// span: the client span becomes lane 0 ("client"), server lanes shift
// up by one, and server offsets re-anchor to the client's epoch (the
// two clocks are compared directly — exact on one machine, approximate
// across machines, and irrelevant to the deterministic span tree).
func MergeRemote(client Span, clientStart time.Time, server *Timeline) *Timeline {
	off := server.Start.Sub(clientStart).Nanoseconds()
	t := &Timeline{
		TraceID: server.TraceID, Root: client.ID,
		Start: clientStart, WallNS: client.DurNS,
		Workers: server.Workers,
		Lanes:   append([]string{"client"}, server.Lanes...),
	}
	client.Lane = 0
	t.Spans = make([]Span, 0, len(server.Spans)+1)
	t.Spans = append(t.Spans, client)
	for _, s := range server.Spans {
		s.Lane++
		s.StartNS += off
		t.Spans = append(t.Spans, s)
	}
	return t
}

// fnv64 hashes s with FNV-1a.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// nonZero keeps derived IDs out of the W3C all-zero invalid range.
func nonZero(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}

// DeriveTraceID returns a deterministic 32-hex trace ID for a study
// key (e.g. "benchmark/isa/category seed=N"). Deterministic so that
// re-running a configuration rebuilds the same trace identity.
func DeriveTraceID(key string) string {
	hi := nonZero(fnv64("vulfi-trace:" + key))
	lo := nonZero(fnv64(key + ":vulfi-trace"))
	return fmt.Sprintf("%016x%016x", hi, lo)
}

// DeriveSpanID returns a deterministic 16-hex span ID scoped to a
// trace: FNV-1a over the trace ID, the span name and a schedule-derived
// discriminator (experiment seed, input seed, or 0 for singletons).
func DeriveSpanID(traceID, name string, n int64) string {
	return fmt.Sprintf("%016x",
		nonZero(fnv64(traceID+"|"+name+"|"+fmt.Sprintf("%d", n))))
}

// FormatTraceparent renders a W3C trace-context traceparent header
// (version 00, sampled flag set).
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent validates and splits a traceparent header into its
// trace ID and parent span ID. Accepts any version byte (per spec,
// future versions parse as 00) but rejects malformed fields and the
// all-zero invalid identities.
func ParseTraceparent(s string) (traceID, spanID string, err error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return "", "", fmt.Errorf("traceparent %q: want version-traceid-spanid-flags", s)
	}
	ver, tid, sid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isHex(ver) || ver == "ff" {
		return "", "", fmt.Errorf("traceparent %q: bad version %q", s, ver)
	}
	if len(tid) != 32 || !isHex(tid) {
		return "", "", fmt.Errorf("traceparent %q: trace ID must be 32 lowercase hex chars", s)
	}
	if tid == strings.Repeat("0", 32) {
		return "", "", fmt.Errorf("traceparent %q: all-zero trace ID is invalid", s)
	}
	if len(sid) != 16 || !isHex(sid) {
		return "", "", fmt.Errorf("traceparent %q: parent span ID must be 16 lowercase hex chars", s)
	}
	if sid == strings.Repeat("0", 16) {
		return "", "", fmt.Errorf("traceparent %q: all-zero span ID is invalid", s)
	}
	if len(flags) != 2 || !isHex(flags) {
		return "", "", fmt.Errorf("traceparent %q: bad flags %q", s, flags)
	}
	return tid, sid, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
