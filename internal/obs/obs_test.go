package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDeriveTraceID(t *testing.T) {
	a := DeriveTraceID("copy/avx/pure-data seed=1")
	b := DeriveTraceID("copy/avx/pure-data seed=1")
	c := DeriveTraceID("copy/avx/pure-data seed=2")
	if a != b {
		t.Fatalf("trace ID not deterministic: %s vs %s", a, b)
	}
	if a == c {
		t.Fatalf("distinct keys collided: %s", a)
	}
	if len(a) != 32 || !isHex(a) {
		t.Fatalf("trace ID %q: want 32 lowercase hex chars", a)
	}
	if a == strings.Repeat("0", 32) {
		t.Fatal("derived all-zero trace ID")
	}
}

func TestDeriveSpanID(t *testing.T) {
	tid := DeriveTraceID("k")
	a := DeriveSpanID(tid, "experiment", 42)
	if a != DeriveSpanID(tid, "experiment", 42) {
		t.Fatal("span ID not deterministic")
	}
	if a == DeriveSpanID(tid, "experiment", 43) {
		t.Fatal("distinct seeds collided")
	}
	if a == DeriveSpanID(tid, "golden", 42) {
		t.Fatal("distinct names collided")
	}
	if len(a) != 16 || !isHex(a) {
		t.Fatalf("span ID %q: want 16 lowercase hex chars", a)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := DeriveTraceID("rt")
	sid := DeriveSpanID(tid, "study", 7)
	hdr := FormatTraceparent(tid, sid)
	gotT, gotS, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if gotT != tid || gotS != sid {
		t.Fatalf("round trip: got (%s,%s) want (%s,%s)", gotT, gotS, tid, sid)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	tid := DeriveTraceID("x")
	sid := DeriveSpanID(tid, "s", 0)
	bad := []string{
		"",
		"00-" + tid + "-" + sid,              // missing flags
		"zz-" + tid + "-" + sid + "-01",      // bad version
		"ff-" + tid + "-" + sid + "-01",      // forbidden version
		"00-" + tid[:31] + "-" + sid + "-01", // short trace ID
		"00-" + strings.ToUpper(tid) + "-" + sid + "-01",    // uppercase
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // zero trace
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // zero span
		"00-" + tid + "-" + sid + "-0g",                     // bad flags
	}
	for _, s := range bad {
		if _, _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q): want error, got nil", s)
		}
	}
	// Future versions parse.
	if _, _, err := ParseTraceparent("01-" + tid + "-" + sid + "-01"); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

// collect builds a small two-worker timeline for the export tests.
func collect(t *testing.T) *Timeline {
	t.Helper()
	epoch := time.Unix(1000, 0)
	tid := DeriveTraceID("test")
	root := DeriveSpanID(tid, "study", 1)
	c := NewCollector(tid, root, "", 2, epoch)
	c.Ctl("compile", DeriveSpanID(tid, "compile", 0), root,
		epoch, 5*time.Millisecond, nil)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := c.Lane(w)
			for i := 0; i < 3; i++ {
				seed := int64(w*3 + i)
				lane.Record("experiment", DeriveSpanID(tid, "experiment", seed),
					root, epoch.Add(time.Duration(seed)*time.Millisecond),
					time.Millisecond, map[string]string{"outcome": "Benign"})
			}
		}(w)
	}
	wg.Wait()
	c.Ctl("study", root, "", epoch, 20*time.Millisecond, nil)
	return c.Finish(20 * time.Millisecond)
}

func TestCollectorFinish(t *testing.T) {
	tl := collect(t)
	if len(tl.Spans) != 8 {
		t.Fatalf("spans = %d, want 8 (root + compile + 6 experiments)", len(tl.Spans))
	}
	if tl.Workers != 2 || len(tl.Lanes) != 3 {
		t.Fatalf("workers=%d lanes=%v", tl.Workers, tl.Lanes)
	}
	// Chronological order with ID tiebreak.
	for i := 1; i < len(tl.Spans); i++ {
		a, b := tl.Spans[i-1], tl.Spans[i]
		if a.StartNS > b.StartNS {
			t.Fatalf("spans out of order at %d: %d > %d", i, a.StartNS, b.StartNS)
		}
	}
	// Every non-root span parents to the root here.
	for _, s := range tl.Spans {
		if s.ID != tl.Root && s.Parent != tl.Root {
			t.Errorf("span %s (%s): parent %q, want root %q", s.ID, s.Name, s.Parent, tl.Root)
		}
	}
}

func TestCanonicalDeterministicAndDeduped(t *testing.T) {
	a := collect(t).Canonical()
	b := collect(t).Canonical()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Canonical() differs across identical collections")
	}
	// Duplicate IDs (cache refills) collapse.
	tl := collect(t)
	tl.Spans = append(tl.Spans, tl.Spans[1])
	if got := len(tl.Canonical()); got != len(a) {
		t.Fatalf("dedup failed: %d canonical spans, want %d", got, len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].ID >= a[i].ID {
			t.Fatalf("canonical spans not sorted by ID at %d", i)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tl := collect(t)
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", len(lines)+1, err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 1+len(tl.Spans) {
		t.Fatalf("lines = %d, want %d", len(lines), 1+len(tl.Spans))
	}
	if lines[0]["kind"] != "timeline" || lines[0]["trace_id"] != tl.TraceID {
		t.Fatalf("bad header: %v", lines[0])
	}
	if int(lines[0]["spans"].(float64)) != len(tl.Spans) {
		t.Fatalf("header span count %v != %d", lines[0]["spans"], len(tl.Spans))
	}
}

func TestWriteTraceEvents(t *testing.T) {
	tl := collect(t)
	var buf bytes.Buffer
	if err := tl.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace-event JSON does not parse: %v", err)
	}
	var meta, complete int
	tids := map[int]bool{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			tids[ev.TID] = true
			if ev.Args["id"] == nil {
				t.Errorf("X event %q missing id arg", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != len(tl.Spans) {
		t.Fatalf("X events = %d, want %d", complete, len(tl.Spans))
	}
	if meta != 1+len(tl.Lanes) {
		t.Fatalf("metadata events = %d, want %d", meta, 1+len(tl.Lanes))
	}
	// Both worker lanes plus control appear.
	for lane := 0; lane < 3; lane++ {
		if !tids[lane] {
			t.Errorf("lane %d has no events", lane)
		}
	}
}

func TestMergeRemote(t *testing.T) {
	server := collect(t)
	clientStart := server.Start.Add(-10 * time.Millisecond)
	client := Span{
		Name: "remote-study",
		ID:   DeriveSpanID(server.TraceID, "remote-study", 0),
		Lane: 0, StartNS: 0, DurNS: 40 * int64(time.Millisecond),
	}
	m := MergeRemote(client, clientStart, server)
	if m.Root != client.ID {
		t.Fatalf("merged root = %s, want client span %s", m.Root, client.ID)
	}
	if len(m.Spans) != len(server.Spans)+1 {
		t.Fatalf("merged spans = %d, want %d", len(m.Spans), len(server.Spans)+1)
	}
	if m.Lanes[0] != "client" || m.Lanes[1] != "control" {
		t.Fatalf("merged lanes = %v", m.Lanes)
	}
	// Server spans shifted by the epoch delta (10ms) and one lane.
	for _, s := range m.Spans[1:] {
		if s.Lane < 1 {
			t.Fatalf("server span %s landed on client lane", s.ID)
		}
		if s.StartNS < 10*int64(time.Millisecond) {
			t.Fatalf("server span %s not re-anchored: start %d", s.ID, s.StartNS)
		}
	}
}
