package atlas

import (
	"embed"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"strconv"
)

//go:embed atlas.html
var tmplFS embed.FS

var heatmapTmpl = template.Must(template.ParseFS(tmplFS, "atlas.html"))

// WriteJSON serializes the atlas as one indented JSON object.
func (a *Atlas) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// AtlasCSVHeader is the column list WriteCSV emits.
var AtlasCSVHeader = []string{
	"site", "key", "func", "block", "instr", "category", "lanes",
	"activations", "injections", "sdc", "benign", "crash", "hang",
	"detected", "sdc_rate", "sdc_lo", "sdc_hi", "crash_rate",
	"detected_rate",
}

// WriteCSV emits the atlas as a CSV table, one row per static site in
// rank order (header included).
func (a *Atlas) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(AtlasCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, r := range a.Rows {
		row := []string{
			strconv.Itoa(r.Site), r.Key, r.Func, r.Block, r.Instr,
			r.Category, strconv.Itoa(r.Lanes),
			strconv.FormatUint(r.Activations, 10),
			strconv.Itoa(r.Injections), strconv.Itoa(r.SDC),
			strconv.Itoa(r.Benign), strconv.Itoa(r.Crash),
			strconv.Itoa(r.Hang), strconv.Itoa(r.Detected),
			f(r.SDCRate.Rate), f(r.SDCRate.Lo), f(r.SDCRate.Hi),
			f(r.CrashRate.Rate), f(r.DetectedRate.Rate),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// rowView is one heatmap table row with its presentation precomputed,
// so the embedded page needs no script to render.
type rowView struct {
	Row
	// Color is the severity background: green at 0% SDC through red at
	// 100%.
	Color template.CSS
	// BarLeft/BarWidth position the Wilson CI bar in percent; BarPoint
	// is the point estimate's position.
	BarLeft  string
	BarWidth string
	BarPoint string
	SDCPct   string
	CrashPct string
	DetPct   string
}

// groupView is one function's row group.
type groupView struct {
	Func string
	Rows []rowView
}

type pageView struct {
	*Atlas
	Groups []groupView
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// severity maps an SDC rate to a background color on a green→yellow→red
// ramp (HSL hue 120→0), pale enough to keep text readable.
func severity(rate float64) template.CSS {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	hue := 120 * (1 - rate)
	return template.CSS(fmt.Sprintf("background:hsl(%.0f,75%%,82%%)", hue))
}

// WriteHTML renders the self-contained heatmap page: a severity-colored
// per-site table grouped by function, with Wilson CI bars and
// client-side column sorting via a small inline script (no external
// assets, so the file is archivable as a single artifact).
func (a *Atlas) WriteHTML(w io.Writer) error {
	pv := pageView{Atlas: a}
	idx := map[string]int{}
	for _, r := range a.Rows {
		i, ok := idx[r.Func]
		if !ok {
			i = len(pv.Groups)
			idx[r.Func] = i
			pv.Groups = append(pv.Groups, groupView{Func: r.Func})
		}
		rv := rowView{
			Row:      r,
			Color:    severity(r.SDCRate.Rate),
			BarLeft:  fmt.Sprintf("%.1f%%", 100*r.SDCRate.Lo),
			BarWidth: fmt.Sprintf("%.1f%%", 100*(r.SDCRate.Hi-r.SDCRate.Lo)),
			BarPoint: fmt.Sprintf("%.1f%%", 100*r.SDCRate.Rate),
			SDCPct:   pct(r.SDCRate.Rate),
			CrashPct: pct(r.CrashRate.Rate),
			DetPct:   pct(r.DetectedRate.Rate),
		}
		pv.Groups[i].Rows = append(pv.Groups[i].Rows, rv)
	}
	return heatmapTmpl.Execute(w, pv)
}
