// Package atlas provides spatial and longitudinal observability over
// fault-injection campaigns: a per-static-site resiliency atlas with
// Wilson confidence intervals and an embedded HTML heatmap (spatial),
// plus an append-only study-history store and a two-proportion
// regression gate comparing any two recorded studies (longitudinal).
package atlas

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"vulfi/internal/buildinfo"
	"vulfi/internal/campaign"
)

// SchemaVersion is stamped on every history entry so future readers can
// migrate old files.
const SchemaVersion = 1

// Entry is one completed study in the history store: enough metadata to
// identify the cell and the binary that ran it, the outcome totals with
// their statistical qualification, and (optionally) the per-site atlas.
type Entry struct {
	Schema int    `json:"schema"`
	Time   string `json:"time"` // RFC3339, UTC
	// Build is the VCS revision of the producing binary (empty when
	// unstamped — tests, ad-hoc builds outside a checkout).
	Build string `json:"build,omitempty"`
	// Job is the vulfid job ID when the study ran under the service.
	Job string `json:"job,omitempty"`

	Benchmark   string `json:"benchmark"`
	ISA         string `json:"isa"`
	Category    string `json:"category"`
	Scale       string `json:"scale"`
	Seed        int64  `json:"seed"`
	Campaigns   int    `json:"campaigns"`
	Experiments int    `json:"experiments_per_campaign"`
	Inputs      int    `json:"inputs"`

	Detectors              bool `json:"detectors"`
	DetectorEveryIteration bool `json:"detector_every_iteration,omitempty"`
	BroadcastDetector      bool `json:"broadcast_detector,omitempty"`
	MaskLoopDetector       bool `json:"mask_loop_detector,omitempty"`
	WholeRegisterSites     bool `json:"whole_register_sites,omitempty"`
	MaskOblivious          bool `json:"mask_oblivious,omitempty"`

	Total       int `json:"total"`
	SDC         int `json:"sdc"`
	Benign      int `json:"benign"`
	Crash       int `json:"crash"`
	Hang        int `json:"hang"`
	Detected    int `json:"detected"`
	SDCDetected int `json:"sdc_detected"`
	NoSites     int `json:"no_sites"`

	MeanSDC float64 `json:"mean_sdc_rate"`
	// Margin is the 95% margin of error over campaign SDC rates (-1 when
	// non-finite, e.g. a single-campaign study).
	Margin      float64 `json:"margin_of_error_95"`
	StaticSites int     `json:"static_sites"`
	LaneSites   int     `json:"lane_sites"`

	WallNS    int64   `json:"wall_ns"`
	ExpPerSec float64 `json:"exp_per_sec"`

	// Sites is the per-site atlas (present when the study ran with
	// Config.Atlas).
	Sites []campaign.SiteTally `json:"sites,omitempty"`
}

// Name renders the entry's cell identity ("benchmark/isa/category").
func (e *Entry) Name() string {
	return e.Benchmark + "/" + e.ISA + "/" + e.Category
}

// NewEntry converts a completed study into its history entry, stamped
// with the given wall-clock time and the running binary's revision.
func NewEntry(sr *campaign.StudyResult, at time.Time) Entry {
	cfg := sr.Cfg
	e := Entry{
		Schema: SchemaVersion,
		Time:   at.UTC().Format(time.RFC3339),
		Build:  buildinfo.Revision(),

		Benchmark:   cfg.Benchmark.Name,
		ISA:         cfg.ISA.Name,
		Category:    cfg.Category.String(),
		Scale:       cfg.Scale.String(),
		Seed:        cfg.Seed,
		Campaigns:   cfg.Campaigns,
		Experiments: cfg.Experiments,
		Inputs:      cfg.Inputs,

		Detectors:              cfg.Detectors,
		DetectorEveryIteration: cfg.DetectorEveryIteration,
		BroadcastDetector:      cfg.BroadcastDetector,
		MaskLoopDetector:       cfg.MaskLoopDetector,
		WholeRegisterSites:     cfg.WholeRegisterSites,
		MaskOblivious:          cfg.MaskOblivious,

		Total:       sr.Totals.Experiments,
		SDC:         sr.Totals.SDC,
		Benign:      sr.Totals.Benign,
		Crash:       sr.Totals.Crash,
		Hang:        sr.Totals.Hang,
		Detected:    sr.Totals.Detected,
		SDCDetected: sr.Totals.SDCDetected,
		NoSites:     sr.Totals.NoSites,

		MeanSDC:     sr.MeanSDC,
		Margin:      finiteOr(sr.MarginOfError, -1),
		StaticSites: sr.StaticSites,
		LaneSites:   sr.LaneSites,

		WallNS: int64(sr.Wall),
		Sites:  sr.Sites,
	}
	if sr.Wall > 0 {
		e.ExpPerSec = float64(sr.Totals.Experiments) / sr.Wall.Seconds()
	}
	return e
}

// History is an append handle on a study-history file. Appends are
// serialized and each entry is one JSON line written with a single
// write call, so concurrent readers never observe a torn record beyond
// the (tolerated) truncated tail.
type History struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenHistory opens (creating if needed) the history file for
// appending.
func OpenHistory(path string) (*History, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &History{f: f, path: path}, nil
}

// Append records one entry.
func (h *History) Append(e Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err = h.f.Write(b)
	return err
}

// Close closes the underlying file.
func (h *History) Close() error { return h.f.Close() }

// AppendEntry is the one-shot convenience: open, append, close.
func AppendEntry(path string, e Entry) error {
	h, err := OpenHistory(path)
	if err != nil {
		return err
	}
	if err := h.Append(e); err != nil {
		h.Close()
		return err
	}
	return h.Close()
}

// ReadHistory replays a history file in append order. Like the vulfid
// job journal, a corrupt or truncated final line (a crash mid-append)
// is tolerated; corruption followed by further valid lines is real
// damage and errors out. A missing file reads as empty history.
func ReadHistory(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			return nil, pendingErr
		}
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr = fmt.Errorf("%s: corrupt history line: %w", path, err)
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("%s: history line too long", path)
		}
		return nil, err
	}
	return out, nil
}
