package atlas

import (
	"fmt"

	"vulfi/internal/stats"
)

// ClassDiff compares one outcome class between a baseline and a
// candidate study via the pooled two-proportion z-test.
type ClassDiff struct {
	Class    string  `json:"class"`
	BaseX    int     `json:"base_x"`
	BaseN    int     `json:"base_n"`
	CandX    int     `json:"cand_x"`
	CandN    int     `json:"cand_n"`
	BaseRate float64 `json:"base_rate"`
	CandRate float64 `json:"cand_rate"`
	// Z is the two-proportion statistic, positive when the candidate's
	// rate is higher than the baseline's.
	Z float64 `json:"z"`
	// Significant reports |Z| at or above the gate's threshold.
	Significant bool `json:"significant"`
	// Regression marks a significant change in the bad direction for
	// this class (SDC/crash up, detection down).
	Regression bool `json:"regression"`
}

// SiteDiff compares one static site's SDC rate between two studies that
// both recorded per-site tallies.
type SiteDiff struct {
	Key      string  `json:"key"`
	Category string  `json:"category"`
	BaseSDC  int     `json:"base_sdc"`
	BaseN    int     `json:"base_n"`
	CandSDC  int     `json:"cand_sdc"`
	CandN    int     `json:"cand_n"`
	BaseRate float64 `json:"base_rate"`
	CandRate float64 `json:"cand_rate"`
	Z        float64 `json:"z"`
	// Regression marks a significant SDC-rate increase at this site.
	Regression bool `json:"regression"`
}

// Diff is the longitudinal comparison of two studies: per-outcome-class
// z-tests plus, when both entries carry atlases, per-site SDC deltas.
type Diff struct {
	Baseline  *Entry      `json:"-"`
	Candidate *Entry      `json:"-"`
	Threshold float64     `json:"threshold"`
	Classes   []ClassDiff `json:"classes"`
	// Sites lists only sites with a significant SDC-rate change in
	// either direction, worst first.
	Sites []SiteDiff `json:"sites,omitempty"`
	// Mismatch warns when the two entries describe different cells
	// (benchmark/ISA/category) — the comparison still runs, but the
	// numbers compare apples to oranges.
	Mismatch string `json:"mismatch,omitempty"`
}

// rateOf is a NaN-free proportion.
func rateOf(x, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(x) / float64(n)
}

// classDiff builds one class row. worseUp says a rate increase is the
// bad direction (SDC, crash); false means a decrease is bad (detected).
func classDiff(class string, baseX, baseN, candX, candN int, z float64, worseUp, gated bool) ClassDiff {
	d := ClassDiff{
		Class: class,
		BaseX: baseX, BaseN: baseN, CandX: candX, CandN: candN,
		BaseRate: rateOf(baseX, baseN), CandRate: rateOf(candX, candN),
		Z: stats.TwoProportionZ(baseX, baseN, candX, candN),
	}
	if d.Z >= z || d.Z <= -z {
		d.Significant = true
		if gated && ((worseUp && d.Z > 0) || (!worseUp && d.Z < 0)) {
			d.Regression = true
		}
	}
	return d
}

// Compare runs the regression gate between a baseline and a candidate
// entry at significance threshold z (use stats.Z95 for the standard 95%
// gate). Regression semantics: a significant SDC- or crash-rate
// increase regresses, as does a significant detection-rate decrease
// when the baseline ran detectors (so a candidate that lost — or
// disabled — its detectors fails the gate); benign and hang shifts are
// reported but never gate (they are complements/subsets of the gated
// classes).
func Compare(baseline, candidate *Entry, z float64) *Diff {
	d := &Diff{Baseline: baseline, Candidate: candidate, Threshold: z}
	if baseline.Name() != candidate.Name() {
		d.Mismatch = fmt.Sprintf("comparing %s against %s",
			candidate.Name(), baseline.Name())
	}
	bn, cn := baseline.Total, candidate.Total
	detGated := baseline.Detectors
	d.Classes = []ClassDiff{
		classDiff("sdc", baseline.SDC, bn, candidate.SDC, cn, z, true, true),
		classDiff("crash", baseline.Crash, bn, candidate.Crash, cn, z, true, true),
		classDiff("benign", baseline.Benign, bn, candidate.Benign, cn, z, true, false),
		classDiff("hang", baseline.Hang, bn, candidate.Hang, cn, z, true, false),
		classDiff("detected", baseline.Detected, bn, candidate.Detected, cn, z, false, detGated),
	}

	if len(baseline.Sites) > 0 && len(candidate.Sites) > 0 {
		base := map[string]int{}
		for i := range baseline.Sites {
			base[baseline.Sites[i].Key] = i
		}
		for i := range candidate.Sites {
			cs := &candidate.Sites[i]
			bi, ok := base[cs.Key]
			if !ok {
				continue
			}
			bs := &baseline.Sites[bi]
			zz := stats.TwoProportionZ(bs.SDC, bs.Injections, cs.SDC, cs.Injections)
			if zz < z && zz > -z {
				continue
			}
			d.Sites = append(d.Sites, SiteDiff{
				Key: cs.Key, Category: cs.Category,
				BaseSDC: bs.SDC, BaseN: bs.Injections,
				CandSDC: cs.SDC, CandN: cs.Injections,
				BaseRate:   rateOf(bs.SDC, bs.Injections),
				CandRate:   rateOf(cs.SDC, cs.Injections),
				Z:          zz,
				Regression: zz > 0,
			})
		}
		// Worst first: largest |z| at the top.
		for i := 1; i < len(d.Sites); i++ {
			for j := i; j > 0 && abs(d.Sites[j].Z) > abs(d.Sites[j-1].Z); j-- {
				d.Sites[j], d.Sites[j-1] = d.Sites[j-1], d.Sites[j]
			}
		}
	}
	return d
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Regressions lists the gate's failures: the outcome classes (and
// per-site SDC rates) that significantly regressed from baseline to
// candidate. Empty means the gate passes.
func (d *Diff) Regressions() []string {
	var out []string
	for _, c := range d.Classes {
		if c.Regression {
			out = append(out, fmt.Sprintf(
				"%s rate %s: %.4f -> %.4f (z=%.2f)",
				c.Class, direction(c.Z), c.BaseRate, c.CandRate, c.Z))
		}
	}
	for _, s := range d.Sites {
		if s.Regression {
			out = append(out, fmt.Sprintf(
				"site %s sdc rate up: %.4f -> %.4f (z=%.2f)",
				s.Key, s.BaseRate, s.CandRate, s.Z))
		}
	}
	return out
}

func direction(z float64) string {
	if z > 0 {
		return "up"
	}
	return "down"
}
