package atlas

import (
	"math"
	"sort"

	"vulfi/internal/campaign"
	"vulfi/internal/stats"
)

// Interval is a Wilson score confidence interval on an outcome rate.
type Interval struct {
	Rate float64 `json:"rate"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// interval computes the rate x/n with its 95% Wilson interval. With no
// injections the rate is 0 and the interval is the vacuous [0,1].
func interval(x, n int) Interval {
	iv := Interval{}
	if n > 0 {
		iv.Rate = float64(x) / float64(n)
	}
	iv.Lo, iv.Hi = stats.WilsonInterval(x, n, stats.Z95)
	return iv
}

// Row is one static site's atlas row: its tally plus the derived rates
// with confidence intervals.
type Row struct {
	campaign.SiteTally
	SDCRate      Interval `json:"sdc_rate"`
	CrashRate    Interval `json:"crash_rate"`
	BenignRate   Interval `json:"benign_rate"`
	DetectedRate Interval `json:"detected_rate"`
}

// Atlas is the spatial view of one study: every instrumented static
// site with its attribution and confidence-qualified outcome rates.
type Atlas struct {
	Benchmark string `json:"benchmark"`
	ISA       string `json:"isa"`
	Category  string `json:"category"`
	// Experiments is the study's total experiment count; Attributed is
	// the subset whose injection landed on a known site (the rest were
	// vacuous or never reached their target).
	Experiments int   `json:"experiments"`
	Attributed  int   `json:"attributed"`
	Rows        []Row `json:"rows"`
}

// New builds the atlas view of a completed study. The study must have
// run with Config.Atlas; without tallies the atlas is empty.
func New(sr *campaign.StudyResult) *Atlas {
	a := &Atlas{
		Benchmark:   sr.Cfg.Benchmark.Name,
		ISA:         sr.Cfg.ISA.Name,
		Category:    sr.Cfg.Category.String(),
		Experiments: sr.Totals.Experiments,
	}
	a.Rows = rows(sr.Sites)
	for _, r := range a.Rows {
		a.Attributed += r.Injections
	}
	return a
}

// FromEntry rebuilds the atlas view from a recorded history entry (the
// longitudinal store keeps raw tallies, not derived rates).
func FromEntry(e *Entry) *Atlas {
	a := &Atlas{
		Benchmark:   e.Benchmark,
		ISA:         e.ISA,
		Category:    e.Category,
		Experiments: e.Total,
	}
	a.Rows = rows(e.Sites)
	for _, r := range a.Rows {
		a.Attributed += r.Injections
	}
	return a
}

// rows derives confidence-qualified rows from raw tallies, ranked most
// SDC-prone first (by SDC rate, then injection count, then key) — the
// same ordering intuition as the trace blame table, but rate-based so
// rarely-hit-but-always-corrupting sites surface.
func rows(tallies []campaign.SiteTally) []Row {
	rs := make([]Row, len(tallies))
	for i, t := range tallies {
		rs[i] = Row{
			SiteTally:    t,
			SDCRate:      interval(t.SDC, t.Injections),
			CrashRate:    interval(t.Crash, t.Injections),
			BenignRate:   interval(t.Benign, t.Injections),
			DetectedRate: interval(t.Detected, t.Injections),
		}
	}
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := &rs[i], &rs[j]
		if a.SDCRate.Rate != b.SDCRate.Rate {
			return a.SDCRate.Rate > b.SDCRate.Rate
		}
		if a.Injections != b.Injections {
			return a.Injections > b.Injections
		}
		return a.Key < b.Key
	})
	return rs
}

// finiteOr replaces non-finite values with a JSON-safe sentinel.
func finiteOr(v, sentinel float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return sentinel
	}
	return v
}
