package atlas

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/isa"
	"vulfi/internal/stats"
)

// tallies builds a small synthetic tally set with a known worst site.
func testTallies() []campaign.SiteTally {
	return []campaign.SiteTally{
		{Site: 0, Key: "@kernel/entry: %v = add", Func: "kernel",
			Block: "entry", Instr: "%v = add", Category: "pure-data",
			Lanes: 4, Activations: 400, Injections: 40, SDC: 30, Benign: 8,
			Crash: 2, Detected: 12},
		{Site: 1, Key: "@kernel/loop: %c = icmp", Func: "kernel",
			Block: "loop", Instr: "%c = icmp", Category: "control",
			Lanes: 4, Activations: 100, Injections: 20, SDC: 2, Benign: 10,
			Crash: 8, Hang: 1, Detected: 5},
		{Site: 2, Key: "@helper/entry: %p = getelementptr", Func: "helper",
			Block: "entry", Instr: "%p = getelementptr", Category: "address",
			Lanes: 1, Activations: 50, Injections: 0},
	}
}

func testEntry(t time.Time, detectors bool, sdc, crash, detected int) Entry {
	return Entry{
		Schema: SchemaVersion, Time: t.UTC().Format(time.RFC3339),
		Benchmark: "vector_copy", ISA: "avx2", Category: "pure-data",
		Scale: "test", Seed: 1, Campaigns: 2, Experiments: 100,
		Detectors: detectors,
		Total:     200, SDC: sdc, Crash: crash, Detected: detected,
		Benign: 200 - sdc - crash,
	}
}

func TestRowsRankAndIntervals(t *testing.T) {
	rs := rows(testTallies())
	if len(rs) != 3 {
		t.Fatalf("rows = %d", len(rs))
	}
	// Rate ranking: 30/40 beats 2/20 beats 0-injection.
	if rs[0].Site != 0 || rs[1].Site != 1 || rs[2].Site != 2 {
		t.Fatalf("rank order %d,%d,%d", rs[0].Site, rs[1].Site, rs[2].Site)
	}
	r := rs[0]
	if r.SDCRate.Rate != 0.75 {
		t.Fatalf("sdc rate %v", r.SDCRate.Rate)
	}
	if r.SDCRate.Lo >= r.SDCRate.Rate || r.SDCRate.Hi <= r.SDCRate.Rate {
		t.Fatalf("CI [%v,%v] excludes point %v", r.SDCRate.Lo, r.SDCRate.Hi, r.SDCRate.Rate)
	}
	// Zero injections: vacuous [0,1] interval, zero rate.
	z := rs[2]
	if z.SDCRate.Rate != 0 || z.SDCRate.Lo != 0 || z.SDCRate.Hi != 1 {
		t.Fatalf("no-injection interval = %+v", z.SDCRate)
	}
}

func TestHeatmapHTML(t *testing.T) {
	a := &Atlas{Benchmark: "vector_copy", ISA: "avx2", Category: "control",
		Experiments: 60, Rows: rows(testTallies())}
	var buf bytes.Buffer
	if err := a.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"<table", "@kernel", "@helper", "icmp", "getelementptr",
		"control", "pure-data", "address", "Wilson",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("heatmap missing %q", want)
		}
	}
	// Self-contained: no external scripts, styles or images.
	for _, banned := range []string{"http://", "https://", "src=\"", "link rel"} {
		if strings.Contains(page, banned) {
			t.Errorf("heatmap references external asset (%q)", banned)
		}
	}
}

func TestAtlasCSVAndJSON(t *testing.T) {
	a := &Atlas{Benchmark: "b", ISA: "i", Category: "c",
		Rows: rows(testTallies())}
	var csvBuf, jsonBuf bytes.Buffer
	if err := a.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("csv lines = %d, want header+3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "site,key,func") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.Contains(jsonBuf.String(), "\"sdc_rate\"") {
		t.Fatal("json missing sdc_rate")
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	e1 := testEntry(t0, true, 40, 10, 30)
	e1.Sites = testTallies()
	e2 := testEntry(t0.Add(time.Hour), true, 42, 11, 29)
	for _, e := range []Entry{e1, e2} {
		if err := AppendEntry(path, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("entries = %d", len(got))
	}
	if got[0].SDC != 40 || len(got[0].Sites) != 3 || got[1].SDC != 42 {
		t.Fatalf("round trip mangled entries: %+v", got)
	}

	// A crash-truncated tail is tolerated; the valid prefix survives.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"benchmark":"tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("truncation-tolerant read = %d entries, want 2", len(got))
	}

	// Corruption followed by more valid data is real damage. Terminate
	// the torn fragment so the next append starts a fresh line.
	f, err = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := AppendEntry(path, e2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHistory(path); err == nil {
		t.Fatal("mid-file corruption not reported")
	}

	// A missing file is empty history, not an error.
	if es, err := ReadHistory(filepath.Join(t.TempDir(), "none.jsonl")); err != nil || es != nil {
		t.Fatalf("missing file: %v, %v", es, err)
	}
}

// TestCompareIdentical: the regression gate must pass — zero
// significant classes, zero regressions — when baseline and candidate
// are the same study. This is the CI smoke contract.
func TestCompareIdentical(t *testing.T) {
	e := testEntry(time.Unix(0, 0), true, 40, 10, 30)
	e.Sites = testTallies()
	d := Compare(&e, &e, stats.Z95)
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("identical studies regressed: %v", regs)
	}
	for _, c := range d.Classes {
		if c.Z != 0 || c.Significant {
			t.Fatalf("identical studies: class %s z=%v significant=%v",
				c.Class, c.Z, c.Significant)
		}
	}
	if len(d.Sites) != 0 {
		t.Fatalf("identical studies produced site diffs: %+v", d.Sites)
	}
}

// TestCompareDetectorGate: a candidate that turned detectors off
// against a detector-enabled baseline must fail the gate on the
// detected class (rate significantly down), and the failure must name
// the class.
func TestCompareDetectorGate(t *testing.T) {
	base := testEntry(time.Unix(0, 0), true, 40, 10, 80)
	cand := testEntry(time.Unix(1, 0), true, 40, 10, 5)
	cand.Detectors = false // candidate disabled its detectors

	d := Compare(&base, &cand, stats.Z95)
	regs := d.Regressions()
	if len(regs) == 0 {
		t.Fatal("collapsed detection passed the gate")
	}
	found := false
	for _, r := range regs {
		if strings.Contains(r, "detected") && strings.Contains(r, "down") {
			found = true
		}
	}
	if !found {
		t.Fatalf("regressions do not name the detected class: %v", regs)
	}

	// And an SDC-rate increase gates regardless of detectors.
	worse := testEntry(time.Unix(2, 0), true, 90, 10, 80)
	d = Compare(&base, &worse, stats.Z95)
	regs = d.Regressions()
	if len(regs) == 0 {
		t.Fatal("SDC surge passed the gate")
	}
	if !strings.Contains(strings.Join(regs, "\n"), "sdc rate up") {
		t.Fatalf("regressions do not name sdc: %v", regs)
	}

	// An improvement (SDC down) is significant but not a regression.
	better := testEntry(time.Unix(3, 0), true, 5, 10, 80)
	if regs := Compare(&base, &better, stats.Z95).Regressions(); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

// TestComparePerSite: per-site SDC deltas surface only significant
// changes, flag increases as regressions, and ignore sites absent from
// the baseline.
func TestComparePerSite(t *testing.T) {
	base := testEntry(time.Unix(0, 0), true, 40, 10, 30)
	base.Sites = []campaign.SiteTally{
		{Key: "@k/b: add", Category: "pure-data", Injections: 100, SDC: 10},
		{Key: "@k/b: mul", Category: "pure-data", Injections: 100, SDC: 50},
	}
	cand := testEntry(time.Unix(1, 0), true, 40, 10, 30)
	cand.Sites = []campaign.SiteTally{
		{Key: "@k/b: add", Category: "pure-data", Injections: 100, SDC: 45},
		{Key: "@k/b: mul", Category: "pure-data", Injections: 100, SDC: 48},
		{Key: "@k/b: new", Category: "control", Injections: 100, SDC: 99},
	}
	d := Compare(&base, &cand, stats.Z95)
	if len(d.Sites) != 1 {
		t.Fatalf("site diffs = %+v, want just the add site", d.Sites)
	}
	s := d.Sites[0]
	if s.Key != "@k/b: add" || !s.Regression || s.Z < stats.Z95 {
		t.Fatalf("site diff = %+v", s)
	}
	if !strings.Contains(strings.Join(d.Regressions(), "\n"), "@k/b: add") {
		t.Fatalf("regressions do not name the site: %v", d.Regressions())
	}
}

// TestCompareMismatch: different cells still compare, but the diff
// carries a mismatch warning.
func TestCompareMismatch(t *testing.T) {
	a := testEntry(time.Unix(0, 0), true, 40, 10, 30)
	b := testEntry(time.Unix(1, 0), true, 40, 10, 30)
	b.Benchmark = "sorting"
	if d := Compare(&a, &b, stats.Z95); d.Mismatch == "" {
		t.Fatal("cross-cell comparison carried no mismatch warning")
	}
}

// TestNewEntryFromStudy: the campaign-facing constructor must carry the
// configuration and totals through faithfully.
func TestNewEntryFromStudy(t *testing.T) {
	// Construct a minimal StudyResult by hand (no real study needed).
	sr := &campaign.StudyResult{}
	sr.Cfg.Benchmark = benchmarks.VectorCopy
	sr.Cfg.ISA = isa.AVX
	sr.Cfg.Seed = 7
	sr.Cfg.Campaigns, sr.Cfg.Experiments = 2, 10
	sr.Cfg.Detectors = true
	sr.Totals.Experiments = 20
	sr.Totals.SDC, sr.Totals.Benign, sr.Totals.Crash = 5, 13, 2
	sr.MeanSDC = 0.25
	sr.Wall = 2 * time.Second
	sr.Sites = testTallies()

	e := NewEntry(sr, time.Date(2026, 8, 6, 9, 0, 0, 0, time.UTC))
	if e.Schema != SchemaVersion || e.Time != "2026-08-06T09:00:00Z" {
		t.Fatalf("stamp = %d %q", e.Schema, e.Time)
	}
	if e.Name() == "" || e.Seed != 7 || e.Total != 20 || e.SDC != 5 {
		t.Fatalf("entry = %+v", e)
	}
	if e.ExpPerSec != 10 {
		t.Fatalf("exp/s = %v, want 10", e.ExpPerSec)
	}
	if len(e.Sites) != 3 {
		t.Fatalf("sites = %d", len(e.Sites))
	}
	if e.Scale != "test" {
		t.Fatalf("scale = %q", e.Scale)
	}
}
